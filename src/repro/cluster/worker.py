"""The worker-process side of the cluster: one service per process.

:func:`worker_main` is the ``multiprocessing`` target.  Each worker builds
its *own* single-process :class:`repro.api.Service` — its own
:class:`~repro.runtime.InstancePool` and :class:`~repro.runtime.BatchRunner`
— from the linked program the dispatcher ships, warmed through a
:class:`~repro.cluster.DiskCache`-backed :class:`~repro.runtime.ModuleCache`
when the config carries a ``cache_dir`` (the parent compiled first, so the
worker's compile is a disk hit, not a recompile).

The wire protocol is deliberately plain: JSON-able dicts over
``multiprocessing`` queues, one record per message (the pipeable-JSONL idiom
— every field is a primitive, so the protocol survives ``spawn``, ``fork``
and any pickle protocol).  Parent → worker ops:

* ``{"op": "request", "id", "export", "args", "max_steps", "trace_id"}``
* ``{"op": "session", "id", "calls", "max_steps", "trace_id", "session_id"}``
* ``{"op": "stats", "id"}`` — reply with pool/cache stats + a metrics
  snapshot (the dispatcher merges these via
  :func:`repro.obs.merge_snapshots`)
* ``{"op": "crash"}`` — deterministic fault injection for the
  worker-death tests: hard-exit without cleanup (``os._exit``)
* ``{"op": "shutdown"}`` — drain and exit cleanly

Worker → parent records always carry ``worker`` (the slot index) and, for
replies, the originating ``id``:

* ``{"op": "ready", "worker", "pid"}`` — service built, pool warm
* ``{"op": "result", "worker", "id", "outcome": {...}}`` — one
  :class:`~repro.runtime.RequestOutcome`, flattened (``ok``, ``values``,
  ``trap``, ``trap_kind``, ``steps``, ``trace_id``) so trap isolation and
  span identity cross the process boundary intact
* ``{"op": "stats", "worker", "id", "stats": {...}}``
* ``{"op": "error", "worker", "id", "message"}`` — a malformed request
  (never a trap: traps are ``result`` records with ``ok=False``)
"""

from __future__ import annotations

import os
import traceback
from typing import Optional

__all__ = ["worker_main", "outcome_to_wire", "wire_to_outcome", "reset_inherited_telemetry"]


def outcome_to_wire(outcome) -> dict:
    """Flatten a :class:`~repro.runtime.RequestOutcome` to primitives."""

    return {
        "ok": outcome.ok,
        "values": outcome.values,
        "trap": outcome.trap,
        "trap_kind": outcome.trap_kind,
        "steps": outcome.steps,
        "trace_id": outcome.trace_id,
    }


def wire_to_outcome(record: dict, request):
    """Rebuild a :class:`~repro.runtime.RequestOutcome` against the
    dispatcher-side request object (the worker never ships the request
    back — the parent already holds it)."""

    from ..runtime.batch import RequestOutcome

    return RequestOutcome(
        request=request,
        ok=record["ok"],
        values=record["values"],
        trap=record["trap"],
        steps=record["steps"],
        trap_kind=record["trap_kind"],
        trace_id=record["trace_id"],
    )


def _reset_inherited_telemetry() -> None:
    """Zero fork-inherited counters so this worker reports only its own.

    Under the ``fork`` start method the child inherits the parent's metric
    values and cache stats; left alone, every worker would re-report the
    parent's compile events and :func:`repro.obs.merge_snapshots` would
    multiply them by N.  The inherited cache *artifacts* are kept — a forked
    worker warm-starting from inherited memory is the cheapest warm start
    there is — only the counters reset.  Under ``spawn`` this is a no-op.
    """

    from .. import runtime
    from ..obs.metrics import default_registry
    from ..obs.trace import NOOP_TRACER, set_tracer
    from . import diskcache

    # A fork-inherited tracer would write into the parent's (duplicated)
    # sink file descriptor; workers trace only when given their own file.
    set_tracer(NOOP_TRACER)
    default_registry().reset()
    caches = list(diskcache._SHARED_CACHES.values())
    if runtime._DEFAULT_CACHE is not None:
        caches.append(runtime._DEFAULT_CACHE)
    for cache in caches:
        for stats in cache.stats.values():
            stats.reset()


#: Public name for the worker bootstrap other process-fan-out layers reuse
#: (the parallel-compile pool in :mod:`repro.parcompile` forks with the same
#: inherited-telemetry problem this solves).
reset_inherited_telemetry = _reset_inherited_telemetry


def _build_service(payload: dict):
    """Compile (disk-warm) and pool the shipped program in this process."""

    from .. import api

    config = payload["config"]
    service = api.serve(payload["richwasm"], config)
    service.warm(min(2, config.pool_size))
    return service


def _run_request(service, message: dict):
    from ..runtime.batch import Request, Session

    if message["op"] == "session":
        request = Session(
            calls=tuple((export, tuple(args)) for export, args in message["calls"]),
            max_steps=message.get("max_steps"),
            trace_id=message.get("trace_id"),
            session_id=message.get("session_id"),
        )
    else:
        request = Request(
            export=message["export"],
            args=tuple(message["args"]),
            max_steps=message.get("max_steps"),
            trace_id=message.get("trace_id"),
        )
    return service.run_one(request)


def _stats_record(service) -> dict:
    from dataclasses import asdict

    from ..obs.metrics import default_registry

    stats = service.stats()
    cache = {}
    if stats.cache:
        cache = {
            stage: {"hits": s.hits, "misses": s.misses, "evictions": s.evictions}
            for stage, s in stats.cache.items()
        }
    return {
        "pid": os.getpid(),
        "pool": asdict(stats.pool),
        "cache": cache,
        "metrics": default_registry().snapshot(),
    }


def worker_main(worker_id: int, request_queue, result_queue, payload: dict) -> None:
    """Process target: build the service, then serve the request queue.

    ``payload`` carries the linked RichWasm module and the (workers=1)
    :class:`~repro.api.CompileConfig`; optionally ``obs_jsonl``, a path this
    worker exports its spans/metrics to (one file per worker — the report
    CLI merges them).
    """

    sink = None
    try:
        _reset_inherited_telemetry()
        if payload.get("obs_jsonl"):
            from ..obs import JsonlSink, Tracer, set_tracer

            sink = JsonlSink(payload["obs_jsonl"])
            set_tracer(Tracer(sink=sink))
        service = _build_service(payload)
    except BaseException:
        result_queue.put({
            "op": "error", "worker": worker_id, "id": None,
            "message": f"worker startup failed:\n{traceback.format_exc()}",
        })
        return
    result_queue.put({"op": "ready", "worker": worker_id, "pid": os.getpid()})
    try:
        while True:
            message = request_queue.get()
            op = message.get("op")
            if op == "shutdown":
                return
            if op == "crash":
                # Fault injection: die the way a SIGKILLed / OOMed worker
                # does — no cleanup, no reply, queues left mid-stream.
                os._exit(1)
            if op == "stats":
                result_queue.put({
                    "op": "stats", "worker": worker_id, "id": message.get("id"),
                    "stats": _stats_record(service),
                })
                continue
            if op in ("request", "session"):
                try:
                    outcome = _run_request(service, message)
                except Exception:
                    # Traps never reach here (run_one isolates them into the
                    # outcome); this is a protocol-level error — unknown
                    # export, malformed args — reported as such.
                    result_queue.put({
                        "op": "error", "worker": worker_id, "id": message.get("id"),
                        "message": traceback.format_exc(),
                    })
                    continue
                result_queue.put({
                    "op": "result", "worker": worker_id, "id": message.get("id"),
                    "outcome": outcome_to_wire(outcome),
                })
                continue
            result_queue.put({
                "op": "error", "worker": worker_id, "id": message.get("id"),
                "message": f"unknown op {op!r}",
            })
    finally:
        if sink is not None:
            from ..obs import NOOP_TRACER, default_registry, set_tracer

            try:
                sink.emit_metrics(default_registry())
            except Exception:
                pass
            set_tracer(NOOP_TRACER)
            sink.close()
