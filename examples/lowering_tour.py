"""A tour of the RichWasm → Wasm lowering (paper §6).

Compiles an ML module with closures, sums, references and module state down
to WebAssembly and reports what the lowering did: which instructions were
erased (capabilities, qualifiers, fold/unfold, pack), how RichWasm locals
were split across Wasm locals, how much code the free-list allocator and the
boxing coercions add, and what the final WAT looks like.

Run with ``python examples/lowering_tour.py``.
"""

from repro.api import CompileConfig, lower as api_lower
from repro.ml import (
    App,
    Assign,
    BinOp,
    Case,
    Deref,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    MkRef,
    MLFunction,
    MLGlobal,
    Pair,
    Fst,
    Snd,
    Seq,
    TInt,
    TRef,
    TSum,
    TUnit,
    Unit,
    Var,
    compile_ml_module,
    ml_module,
)
from repro.core.typing import check_module
from repro.wasm import WasmInterpreter, count_instrs, module_to_wat, validate_module


def build_source():
    """An ML module exercising closures, sums, pairs, refs and module state."""

    return ml_module(
        "tour",
        globals=[MLGlobal("acc", TRef(TInt()), MkRef(IntLit(0)))],
        functions=[
            MLFunction(
                "classify", "x", TInt(), TInt(),
                Case(
                    If(BinOp("<", Var("x"), IntLit(0)),
                       Inl(Unit(), TSum(TUnit(), TInt())),
                       Inr(Var("x"), TSum(TUnit(), TInt()))),
                    "neg", IntLit(-1),
                    "pos", BinOp("*", Var("pos"), IntLit(2)),
                ),
            ),
            MLFunction(
                "compose", "x", TInt(), TInt(),
                Let("add", Lam("y", TInt(), BinOp("+", Var("y"), IntLit(10))),
                    Let("mul", Lam("y", TInt(), BinOp("*", Var("y"), IntLit(3))),
                        App(Var("mul"), App(Var("add"), Var("x"))))),
            ),
            MLFunction(
                "accumulate", "x", TInt(), TInt(),
                Seq(Assign(Var("acc"), BinOp("+", Deref(Var("acc")), Var("x"))),
                    Deref(Var("acc"))),
            ),
            MLFunction(
                "pairs", "x", TInt(), TInt(),
                Let("p", Pair(Var("x"), Pair(IntLit(1), IntLit(2))),
                    BinOp("+", Fst(Var("p")), Snd(Snd(Var("p"))))),
            ),
        ],
    )


def main() -> None:
    richwasm = compile_ml_module(build_source())
    check_module(richwasm)
    print(f"RichWasm module: {len(richwasm.functions)} functions,"
          f" {richwasm.instruction_count()} instructions")

    # The facade's stop-after-lowering entry point: the RichWasm module we
    # just compiled is dispatched to the "richwasm" frontend (an MLModule
    # source would go through "ml"), lowered under one CompileConfig, and
    # the artifact carries structured diagnostics.
    lowered = api_lower(richwasm, CompileConfig(opt_level="O0", cache="none"))
    validate_module(lowered.wasm)
    print(f"facade: frontends {lowered.diagnostics.frontends},"
          f" {lowered.diagnostics.total_seconds:.4f}s")
    stats = lowered.stats
    print("lowering statistics:")
    print(f"  RichWasm instructions : {stats.richwasm_instructions}")
    print(f"  Wasm instructions     : {stats.wasm_instructions}")
    print(f"  erased (type-level)   : {stats.erased_instructions}")
    print(f"  boxing coercions      : {stats.boxing_coercions}")
    expansion = stats.wasm_instructions / max(stats.richwasm_instructions, 1)
    print(f"  expansion factor      : {expansion:.2f}x")

    interpreter = WasmInterpreter()
    instance = interpreter.instantiate(lowered.wasm)
    interpreter.invoke(instance, "_init")
    print("wasm classify(-5) =", interpreter.invoke(instance, "classify", [-5]))
    print("wasm classify(21) =", interpreter.invoke(instance, "classify", [21]))
    print("wasm compose(4)   =", interpreter.invoke(instance, "compose", [4]))
    print("wasm pairs(5)     =", interpreter.invoke(instance, "pairs", [5]))
    print("wasm accumulate   =", [interpreter.invoke(instance, "accumulate", [i])[0] for i in (1, 2, 3)])

    wat = module_to_wat(lowered.wasm).splitlines()
    print(f"\n--- WAT ({len(wat)} lines, first 30 shown) ---")
    print("\n".join(wat[:30]))


if __name__ == "__main__":
    main()
