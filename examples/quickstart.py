"""Quickstart: build, type-check, run and lower a RichWasm module by hand.

This walks the whole public API surface on a tiny module:

1. construct RichWasm functions from the instruction/type constructors in
   ``repro.core.syntax``;
2. type-check the module (``repro.core.typing.check_module``);
3. execute it on the RichWasm interpreter (two-memory store, GC rule);
4. compile and serve it through the stable facade —
   ``repro.api.compile``/``serve`` with a ``CompileConfig`` (optimization
   level, engine, cache policy) — and read the structured diagnostics;
5. re-run it under observability — a ``repro.obs`` tracer exporting
   schema-versioned JSONL spans, summarized by ``repro.obs.report``;
6. serve the same program from two worker processes —
   ``serve(..., workers=2)`` returns a ``repro.cluster.ClusterService``
   with the same surface;
7. print the lowered module as WAT-style text.

Run with ``python examples/quickstart.py``.
"""

from repro.api import CompileConfig, serve

from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Drop,
    Function,
    GetLocal,
    IntBinop,
    LIN,
    Loop,
    MemUnpack,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    Return,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructMalloc,
    StructSet,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.semantics import Interpreter
from repro.core.syntax import NumV
from repro.core.typing import check_module
from repro.wasm import module_to_wat


def build_module():
    """A module with two exports: `fact` (loops) and `cell` (linear memory)."""

    fact = Function(
        funtype=funtype([i32()], [i32()]),
        locals_sizes=(SizeConst(32),),
        body=(
            NumConst(NumType.I32, 1),
            SetLocal(1),
            Block(arrow([], []), (), (
                Loop(arrow([], []), (
                    GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                    GetLocal(0), GetLocal(1), NumBinop(NumType.I32, IntBinop.MUL), SetLocal(1),
                    GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                    Br(0),
                )),
            )),
            GetLocal(1),
            Return(),
        ),
        exports=("fact",),
        name="fact",
    )

    # Allocate a struct in the *linear* (manually managed) memory, strongly
    # update it, read it back, and free it — the checker enforces that the
    # linear reference is used exactly once on every path.
    cell = Function(
        funtype=funtype([i32()], [i32()]),
        locals_sizes=(SizeConst(32),),
        body=(
            GetLocal(0),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 100), StructSet(0),
                StructGet(0), SetLocal(1),
                StructFree(),
                GetLocal(1),
            )),
            Return(),
        ),
        exports=("cell",),
        name="cell",
    )
    return make_module(functions=[fact, cell], name="quickstart")


def main() -> None:
    module = build_module()

    result = check_module(module)
    print(f"type checked {result.functions_checked} functions,"
          f" {result.instructions_checked} instructions")

    interpreter = Interpreter()
    instance = interpreter.instantiate(module)
    print("richwasm fact(6)  =", interpreter.invoke_export(instance, "fact", [NumV(NumType.I32, 6)]).values)
    print("richwasm cell(7)  =", interpreter.invoke_export(instance, "cell", [NumV(NumType.I32, 7)]).values)
    print("store after run   :", interpreter.store.stats())

    # The stable facade: one config drives optimization level, engine and
    # cache policy; the compiled program is served from an instance pool.
    service = serve(module, CompileConfig(opt_level="O2"))
    print("wasm fact(6)      =", service.call("fact", [6]))
    print("wasm cell(7)      =", service.call("cell", [7]))
    lowered = service.compiled.lowered
    print("lowering stats    :", lowered.stats)

    # The compiled execution tier: same artifact, same answers (the engines
    # are held to bit-identical results/traps/steps), but the flat code is
    # translated once to Python source — 3-5x the flat VM on hot paths.
    compiled_service = serve(module, CompileConfig(opt_level="O2", engine="compiled"))
    print("compiled fact(6)  =", compiled_service.call("fact", [6]))
    assert compiled_service.call("cell", [7]) == service.call("cell", [7])

    # Parallel compilation: compile_workers=2 fans the per-function units
    # over a worker pool (repro.parcompile); the artifact is bit-identical
    # to a serial compile, and cache="private" forces the cold compile here.
    parallel = serve(module, CompileConfig(opt_level="O2", engine="compiled",
                                           cache="private", compile_workers=2))
    assert parallel.call("fact", [6]) == compiled_service.call("fact", [6])
    print("parallel fact(6)  =", parallel.call("fact", [6]))
    print("\n--- compile diagnostics ---")
    print(service.diagnostics.format_report())

    # Observability: install a tracer exporting schema-versioned JSONL, run
    # some traffic, and summarize the trace with the bundled aggregator.
    # The default tracer is a shared no-op, so everything above ran untraced
    # at zero cost; restoring it afterwards is part of the contract.
    print("\n--- traced run (repro.obs) ---")
    import tempfile

    from repro.obs import NOOP_TRACER, JsonlSink, Tracer, set_tracer
    from repro.obs.report import format_summary, summarize
    from repro.obs.export import read_records

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        trace_path = handle.name
    sink = JsonlSink(trace_path)
    set_tracer(Tracer(sink=sink))
    try:
        traced = serve(module, CompileConfig(opt_level="O2"))
        traced.call("fact", [6])
        traced.run([("fact", (5,)), ("cell", (7,))])
    finally:
        set_tracer(NOOP_TRACER)
        sink.close()
    records = list(read_records(trace_path))  # validates every line
    print(f"exported {len(records)} schema-valid record(s) to {trace_path}")
    print(format_summary(summarize(records)))

    # Scale out: workers=2 builds a ClusterService — the same surface as
    # the in-process service, but every request is executed by one of two
    # worker processes (round-robin requests, sticky sessions by id).
    print("\n--- two-worker cluster (repro.cluster) ---")
    from repro.runtime import Session

    with serve(module, CompileConfig(opt_level="O2", workers=2)) as cluster:
        print("cluster fact(6)   =", cluster.call("fact", [6]))
        report = cluster.run([
            Session(calls=(("fact", (5,)), ("cell", (7,))), session_id=f"user-{i}")
            for i in range(4)
        ])
        print("cluster batch     :", f"{report.ok_count}/{len(report.outcomes)} ok")
        stats = cluster.stats()
        print("cluster workers   :", sorted(stats.workers))

    print("\n--- lowered module (WAT excerpt) ---")
    print("\n".join(module_to_wat(lowered.wasm).splitlines()[:25]))


if __name__ == "__main__":
    main()
