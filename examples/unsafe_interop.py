"""Figs. 1 and 3: unsafe ML/L3 interop is caught statically by RichWasm.

Three acts:

1. **Fig. 1** — ML stashes a GC'd reference, the manually-managed client
   frees both its own reference and the stashed copy.  Without linking types
   the two sides do not even agree on the boundary type, so the FFI check
   rejects the program when resolving the import.
2. **Fig. 3 (unsafe)** — the same program written with linking types
   (``(ref int)lin``, ``ref_to_lin``, ``join``/``split``).  The boundary now
   agrees, but ML's ``stash`` both stores and returns the linear reference;
   the compiled RichWasm duplicates a linear value and fails the RichWasm
   type check.
3. **Fig. 3 (repaired)** — ``stash`` consumes the reference and returns
   unit; the program type checks, links, and runs on both the RichWasm
   interpreter and (after lowering) on WebAssembly.

Run with ``python examples/unsafe_interop.py``.
"""

from repro.api import CompileConfig
from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module
from repro.core.typing.errors import LinkError, RichWasmTypeError
from repro.ffi import Program, check_link, fig1_unsafe_program, fig3_programs


def act_1_naive_interop() -> None:
    print("=== Fig. 1: naive interop (no linking types) ===")
    scenario = fig1_unsafe_program()
    try:
        check_link(scenario.modules())
    except LinkError as error:
        print("rejected while resolving the ml.stash import:")
        print("   ", str(error)[:200])
    else:
        raise AssertionError("the Fig. 1 program must not link")


def act_2_linking_types_unsafe() -> None:
    print("\n=== Fig. 3: linking types, unsafe stash ===")
    unsafe, _ = fig3_programs()
    # The client side is fine on its own; the ML side duplicates a linear
    # value, which the RichWasm type checker rejects.
    check_module(unsafe.client)
    print("client module type checks on its own")
    try:
        check_module(unsafe.ml)
    except RichWasmTypeError as error:
        print("ml module rejected by the RichWasm type checker:")
        print("   ", type(error).__name__ + ":", str(error)[:160])
    else:
        raise AssertionError("the unsafe stash must not type check")


def act_3_repaired() -> None:
    print("\n=== Fig. 3 (repaired): stash consumes the reference ===")
    _, safe = fig3_programs()
    program = Program(safe.modules())

    instance = program.instantiate()
    instance.invoke("client", "store", [NumV(NumType.I32, 42)])
    taken = instance.invoke("client", "take", [UnitV()])
    print("richwasm interpreter: stored 42, took back", taken[0].value)
    print("heap after run:", instance.store_stats())

    # The facade-era entry point: one config selects the optimization level
    # (and engine/cache policy when needed) instead of per-call keywords.
    wasm = program.instantiate_wasm(config=CompileConfig(opt_level="O1"))
    wasm.invoke("client", "store", [42])
    print("wasm (one shared linear memory): took back", wasm.invoke("client", "take", [0]))

    # Reading the cell twice is the runtime-checked failure mode the paper
    # describes for ref_to_lin: the second take traps instead of duplicating.
    from repro.core.semantics import Trap

    try:
        instance.invoke("client", "take", [UnitV()])
        instance.invoke("client", "take", [UnitV()])
    except Trap as trap:
        print("second take correctly trapped at runtime:", trap)


def main() -> None:
    act_1_naive_interop()
    act_2_linking_types_unsafe()
    act_3_repaired()


if __name__ == "__main__":
    main()
