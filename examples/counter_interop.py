"""Fig. 9: a manually-managed counter library driven by a GC'd client.

The library side is written in L3: it owns manually-managed cells and exposes
``counter_new`` / ``counter_bump`` / ``counter_read`` on *linear* references.
The client side is written in ML: it hides the linear reference inside a
``ref_to_lin`` cell, so the rest of the ML program uses a completely ordinary
(unrestricted) interface — exactly the "use the library without reasoning
about linearity" point of the paper's Fig. 9 walk-through.

The same program is run three ways:

* on the RichWasm interpreter with both modules as separate instances
  sharing one two-memory store;
* statically linked and lowered to a single Wasm module with one linear
  memory (fine-grained shared-memory interop on stock WebAssembly);
* under the empirical type-safety harness, which re-checks the store
  invariants after every reduction step.

Run with ``python examples/counter_interop.py``.
"""

from repro.analysis import SafetyHarness
from repro.api import CompileConfig, serve
from repro.core.syntax import NumType, NumV, UnitV
from repro.ffi import Program, counter_program
from repro.ffi.link import link_modules


def run_on_interpreter(ticks: int) -> int:
    scenario = counter_program()
    program = Program(scenario.modules())
    instance = program.instantiate()
    instance.invoke("client", "client_init", [NumV(NumType.I32, 0)])
    for _ in range(ticks):
        instance.invoke("client", "client_tick", [UnitV()])
    total = instance.invoke("client", "client_total", [UnitV()])[0].value
    print(f"richwasm interpreter: {ticks} ticks -> total {total}")
    print("  heap:", instance.store_stats())
    return total


def run_on_wasm(ticks: int) -> int:
    # The facade path: the two RichWasm modules are linked, lowered to one
    # Wasm module at O2, and served from an instance pool; the stateful
    # init/tick*/total script runs as one session on one pooled instance.
    service = serve(counter_program(), CompileConfig(opt_level="O2"))
    outcome = service.session(
        [("client_init", (0,))]
        + [("client_tick", ())] * ticks
        + [("client_total", ())]
    )
    assert outcome.ok, outcome.trap
    total = outcome.values[-1][0]
    print(f"wasm (single shared memory): {ticks} ticks -> total {total}")
    print("  lowering:", service.compiled.lowered.stats)
    print("  compile :", ", ".join(
        f"{t.stage} {service.diagnostics.cache.get(t.stage, '-')}"
        for t in service.diagnostics.stages
    ))
    return total


def run_under_safety_harness(ticks: int) -> None:
    scenario = counter_program()
    linked = link_modules(scenario.modules())
    harness = SafetyHarness()
    invocations = [("client.client_init", [NumV(NumType.I32, 0)])]
    invocations += [("client.client_tick", [UnitV()]) for _ in range(ticks)]
    invocations += [("client.client_total", [UnitV()])]
    report = harness.run_module(linked, invocations)
    print(
        f"safety harness: {report.steps} steps, {report.store_checks} store checks,"
        f" violations: {len(report.preservation_violations)}"
    )


def main() -> None:
    ticks = 5
    interp_total = run_on_interpreter(ticks)
    wasm_total = run_on_wasm(ticks)
    assert interp_total == wasm_total == ticks, (interp_total, wasm_total)
    run_under_safety_harness(ticks)
    print("both executions agree; every intermediate store was well formed")


if __name__ == "__main__":
    main()
