"""RUN — execution throughput across interpreters and engines.

Three comparison series:

* RichWasm interpreter vs lowered Wasm (the original §6 companion series);
* tree-walking engine vs pre-decoded flat VM on the same lowered Wasm — the
  head-to-head for the pluggable execution-engine layer.  The flat VM must
  deliver at least 2x steps/sec on every workload;
* flat VM vs the compiled tier (:mod:`repro.wasm.pygen`), which translates
  the decoded flat code to Python source once per module and must deliver at
  least 3x the flat VM's steps/sec on ``sum_loop``.

Every series agrees on results, traps, final memory, globals, and step
counts (checked three ways via :func:`repro.opt.run_engine_cross_check`).
"""

import os

import pytest

from repro.core.semantics import Interpreter
from repro.core.syntax import NumType, NumV
from repro.opt import run_engine_cross_check
from repro.wasm import WasmInterpreter

from workloads import SUM_N, WORKLOADS, measure_engine, run_calls

EXPECTED = SUM_N * (SUM_N + 1) // 2

# The acceptance floors; measured headroom is ~2.9-3.3x (flat over tree) and
# ~3.4-5x (compiled over flat).  Overridable so a heavily contended runner
# can relax the gates without a code change.
ENGINE_SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "2.0"))
COMPILED_SPEEDUP_FLOOR = float(os.environ.get("REPRO_COMPILED_SPEEDUP_FLOOR", "3.0"))


# ---------------------------------------------------------------------------
# RichWasm interpreter vs lowered Wasm (original series)
# ---------------------------------------------------------------------------


def test_backends_agree_on_sum():
    wasm, _calls = WORKLOADS["sum_loop"]()
    wi = WasmInterpreter()
    inst = wi.instantiate(wasm)
    assert wi.invoke(inst, "sum", [SUM_N])[0] == EXPECTED


@pytest.mark.benchmark(group="execution")
def test_bench_lowered_wasm_flat(benchmark):
    wasm, _ = WORKLOADS["sum_loop"]()
    wi = WasmInterpreter(engine="flat")
    inst = wi.instantiate(wasm)
    result = benchmark(lambda: wi.invoke(inst, "sum", [SUM_N])[0])
    assert result == EXPECTED


@pytest.mark.benchmark(group="execution")
def test_bench_lowered_wasm_tree(benchmark):
    wasm, _ = WORKLOADS["sum_loop"]()
    wi = WasmInterpreter(engine="tree")
    inst = wi.instantiate(wasm)
    result = benchmark(lambda: wi.invoke(inst, "sum", [SUM_N])[0])
    assert result == EXPECTED


@pytest.mark.benchmark(group="execution")
def test_bench_lowered_wasm_compiled(benchmark):
    wasm, _ = WORKLOADS["sum_loop"]()
    wi = WasmInterpreter(engine="compiled")
    inst = wi.instantiate(wasm)
    result = benchmark(lambda: wi.invoke(inst, "sum", [SUM_N])[0])
    assert result == EXPECTED


# ---------------------------------------------------------------------------
# Engine head-to-head: tree walker vs flat VM vs compiled tier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_engines_agree(workload):
    """All three engines agree on every observable, including steps."""

    wasm, calls = WORKLOADS[workload]()
    report = run_engine_cross_check(wasm, calls)
    assert report.ok, report.format_report()
    assert report.baseline_steps == report.candidate_steps > 0


@pytest.mark.perf
@pytest.mark.parametrize("workload", ["ml_pipeline", "l3_churn", "linked_counter", "sum_loop"])
def test_flat_vm_is_at_least_2x(workload):
    """The flat VM sustains >= 2x the tree walker's steps/sec everywhere."""

    wasm, calls = WORKLOADS[workload]()
    tree_steps, tree_time = measure_engine(wasm, calls, "tree")
    flat_steps, flat_time = measure_engine(wasm, calls, "flat")
    assert tree_steps == flat_steps  # identical accounting is a prerequisite
    tree_sps = tree_steps / tree_time
    flat_sps = flat_steps / flat_time
    speedup = flat_sps / tree_sps
    print(
        f"\n{workload}: tree {tree_sps:,.0f} steps/s, flat {flat_sps:,.0f} steps/s, "
        f"speedup {speedup:.2f}x ({tree_steps} steps/script)"
    )
    assert speedup >= ENGINE_SPEEDUP_FLOOR, (
        f"{workload}: flat VM only {speedup:.2f}x over tree walker "
        f"(tree {tree_sps:,.0f} vs flat {flat_sps:,.0f} steps/sec)"
    )


@pytest.mark.perf
def test_compiled_is_at_least_3x_flat():
    """Acceptance: the compiled tier sustains >= 3x the flat VM's steps/sec
    on ``sum_loop`` (the tightest-loop workload, i.e. the least favourable
    case for translation overhead to amortize)."""

    wasm, calls = WORKLOADS["sum_loop"]()
    flat_steps, flat_time = measure_engine(wasm, calls, "flat")
    compiled_steps, compiled_time = measure_engine(wasm, calls, "compiled")
    assert flat_steps == compiled_steps  # identical accounting is a prerequisite
    flat_sps = flat_steps / flat_time
    compiled_sps = compiled_steps / compiled_time
    speedup = compiled_sps / flat_sps
    print(
        f"\nsum_loop: flat {flat_sps:,.0f} steps/s, compiled {compiled_sps:,.0f} steps/s, "
        f"speedup {speedup:.2f}x ({flat_steps} steps/script)"
    )
    assert speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"sum_loop: compiled tier only {speedup:.2f}x over flat VM "
        f"(flat {flat_sps:,.0f} vs compiled {compiled_sps:,.0f} steps/sec)"
    )


@pytest.mark.benchmark(group="engines")
@pytest.mark.parametrize("engine", ["tree", "flat", "compiled"])
def test_bench_engine_ml_pipeline(benchmark, engine):
    wasm, calls = WORKLOADS["ml_pipeline"]()
    wi = WasmInterpreter(engine=engine)
    inst = wi.instantiate(wasm)
    benchmark(lambda: run_calls(wi, inst, calls))


@pytest.mark.benchmark(group="engines")
@pytest.mark.parametrize("engine", ["tree", "flat", "compiled"])
def test_bench_engine_l3_churn(benchmark, engine):
    wasm, calls = WORKLOADS["l3_churn"]()
    wi = WasmInterpreter(engine=engine)
    inst = wi.instantiate(wasm)
    benchmark(lambda: run_calls(wi, inst, calls))


@pytest.mark.benchmark(group="engines")
@pytest.mark.parametrize("engine", ["tree", "flat", "compiled"])
def test_bench_engine_linked_counter(benchmark, engine):
    wasm, calls = WORKLOADS["linked_counter"]()
    wi = WasmInterpreter(engine=engine)
    inst = wi.instantiate(wasm)
    benchmark(lambda: run_calls(wi, inst, calls))


# ---------------------------------------------------------------------------
# RichWasm interpreter baseline (kept from the original series)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="execution")
def test_bench_richwasm_interpreter(benchmark):
    from repro.core.typing import check_module
    from repro.core.syntax import (
        Block, Br, BrIf, Function, GetLocal, IntBinop, Loop, NumBinop, NumConst,
        NumTestop, Return, SetLocal, SizeConst, arrow, funtype, i32, make_module,
    )

    body = (
        NumConst(NumType.I32, 0), SetLocal(1),
        Block(arrow([], []), (), (
            Loop(arrow([], []), (
                GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                GetLocal(1), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), SetLocal(1),
                GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                Br(0),
            )),
        )),
        GetLocal(1), Return(),
    )
    module = make_module(functions=[
        Function(funtype([i32()], [i32()]), (SizeConst(32),), body, ("sum",))
    ])
    check_module(module)
    interp = Interpreter()
    idx = interp.instantiate(module)
    result = benchmark(lambda: interp.invoke_export(idx, "sum", [NumV(NumType.I32, SUM_N)]).values[0].value)
    assert result == EXPECTED
