"""RUN — execution throughput: RichWasm interpreter vs lowered Wasm.

Not a table in the paper, but the natural companion series for §6: the same
computation executed on the RichWasm interpreter (structured heap values,
typed semantics) and after lowering to Wasm (flat memory, erased types).
"""

import pytest

from repro.core.semantics import Interpreter
from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Function,
    GetLocal,
    IntBinop,
    Loop,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    NumV,
    Return,
    SetLocal,
    SizeConst,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.typing import check_module
from repro.lower import lower_module
from repro.wasm import WasmInterpreter, validate_module

N = 2000


def loop_module():
    body = (
        NumConst(NumType.I32, 0), SetLocal(1),
        Block(arrow([], []), (), (
            Loop(arrow([], []), (
                GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                GetLocal(1), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), SetLocal(1),
                GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                Br(0),
            )),
        )),
        GetLocal(1), Return(),
    )
    return make_module(functions=[
        Function(funtype([i32()], [i32()]), (SizeConst(32),), body, ("sum",))
    ])


EXPECTED = N * (N + 1) // 2


def test_backends_agree_on_sum():
    module = loop_module()
    check_module(module)
    interp = Interpreter()
    idx = interp.instantiate(module)
    rw = interp.invoke_export(idx, "sum", [NumV(NumType.I32, N)]).values[0].value
    lowered = lower_module(module)
    validate_module(lowered.wasm)
    wi = WasmInterpreter()
    inst = wi.instantiate(lowered.wasm)
    assert rw == wi.invoke(inst, "sum", [N])[0] == EXPECTED


@pytest.mark.benchmark(group="execution")
def test_bench_richwasm_interpreter(benchmark):
    module = loop_module()
    interp = Interpreter()
    idx = interp.instantiate(module)
    result = benchmark(lambda: interp.invoke_export(idx, "sum", [NumV(NumType.I32, N)]).values[0].value)
    assert result == EXPECTED


@pytest.mark.benchmark(group="execution")
def test_bench_lowered_wasm(benchmark):
    module = loop_module()
    lowered = lower_module(module)
    wi = WasmInterpreter()
    inst = wi.instantiate(lowered.wasm)
    result = benchmark(lambda: wi.invoke(inst, "sum", [N])[0])
    assert result == EXPECTED
