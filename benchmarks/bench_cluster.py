"""CLUSTER — sharded multi-process serving + the durable on-disk cache.

Three claims, enforced as assertions:

* **Scale-out throughput** (``perf``-marked): 4 workers sustain at least
  3x the single-process aggregate request rate on the counter-session
  workload.  The gate arms only when the host actually has that many CPUs
  (``os.cpu_count() >= workers``) — on a single core, N workers time-slice
  one CPU and the wire overhead makes the honest measurement < 1x.
* **Disk warm start** (``perf``-marked): a cold *process* against a warm
  cache directory starts at least 10x faster than a cold compile — the
  fingerprint key shortcut + pickled program/flat-code artifacts skip the
  whole pipeline.
* **Correctness** (always on): the cluster returns the same session
  results as the in-process service on every engine, and a warm disk start
  reports a ``program`` cache hit with identical execution behaviour.

Floors are environment-overridable: ``REPRO_CLUSTER_SPEEDUP_FLOOR``
(default 3.0) and ``REPRO_DISK_WARM_FLOOR`` (default 10.0).
"""

import os

import pytest

from repro import api
from repro.ffi import counter_program

from workloads import (
    counter_sessions,
    measure_cluster_throughput,
    measure_disk_warm_start,
)

CLUSTER_SPEEDUP_FLOOR = float(os.environ.get("REPRO_CLUSTER_SPEEDUP_FLOOR", "3.0"))
DISK_WARM_FLOOR = float(os.environ.get("REPRO_DISK_WARM_FLOOR", "10.0"))
CLUSTER_WORKERS = int(os.environ.get("REPRO_CLUSTER_WORKERS", "4"))

ENGINES = ("tree", "flat", "compiled")


@pytest.mark.perf
def test_cluster_throughput_at_least_3x():
    if (os.cpu_count() or 1) < CLUSTER_WORKERS:
        pytest.skip(
            f"host has {os.cpu_count()} CPUs; the {CLUSTER_WORKERS}-worker "
            "scale-out gate needs one core per worker to be meaningful"
        )
    result = measure_cluster_throughput(workers=CLUSTER_WORKERS)
    print(
        f"\n  cluster rps: {result['single_requests_per_sec']:,} single -> "
        f"{result['cluster_requests_per_sec']:,} x{result['workers']} workers "
        f"({result['speedup']}x, {result['cpu_count']} CPUs)"
    )
    assert result["single_ok"] == result["cluster_ok"] == result["sessions"]
    assert result["speedup"] >= CLUSTER_SPEEDUP_FLOOR, (
        f"{result['workers']}-worker cluster only {result['speedup']}x the "
        f"single process (floor {CLUSTER_SPEEDUP_FLOOR}x)"
    )


@pytest.mark.perf
def test_disk_warm_start_at_least_10x():
    result = measure_disk_warm_start()
    print(
        f"\n  disk warm start: cold {result['cold_wall_s']}s -> warm "
        f"{result['warm_wall_s']}s ({result['speedup']}x, "
        f"{result['functions']} functions)"
    )
    assert result["program_cold"] == "miss"
    assert result["program_warm"] == "hit", (
        "warm child recompiled instead of loading from disk"
    )
    assert result["speedup"] >= DISK_WARM_FLOOR, (
        f"disk warm start only {result['speedup']}x the cold compile "
        f"(floor {DISK_WARM_FLOOR}x)"
    )


def test_disk_warm_start_hits_without_recompiling():
    # The non-perf half of the warm-start claim: a fresh process against a
    # warm directory must report a program hit (no floor on the wall time).
    result = measure_disk_warm_start(functions=40, warm_repeats=1)
    assert result["program_cold"] == "miss"
    assert result["program_warm"] == "hit"


@pytest.mark.parametrize("engine", ENGINES)
def test_cluster_matches_single_process_results(engine):
    scenario = counter_program()
    sessions = counter_sessions(6, ticks=5)
    with api.serve(scenario, {"cache": "private", "engine": engine}) as single:
        baseline = single.run(sessions)
    with api.serve(
        scenario, {"cache": "private", "engine": engine, "workers": 2}
    ) as cluster:
        assert cluster.workers == 2
        report = cluster.run(counter_sessions(6, ticks=5))
    assert baseline.ok_count == report.ok_count == 6
    assert [o.values for o in baseline.outcomes] == [o.values for o in report.outcomes]
    assert [o.steps for o in baseline.outcomes] == [o.steps for o in report.outcomes]


def test_cluster_stats_aggregate_metrics():
    with api.serve(counter_program(), {"cache": "private", "workers": 2}) as cluster:
        cluster.run(counter_sessions(4, ticks=3))
        stats = cluster.stats()
    assert set(stats.workers) == {0, 1}
    assert stats.respawns == 0
    names = {record["name"] for record in stats.metrics}
    assert "runtime.requests" in names
