"""Shared benchmark workloads: lowered Wasm modules plus call scripts.

Used by ``bench_interpreters.py`` (engine head-to-head) and ``run_all.py``
(the cross-PR perf tracker and the tree-vs-flat cross-check smoke gate), so
the numbers and the differential checks always talk about the same programs:

* ``sum_loop`` — a hand-written RichWasm counting loop (branch heavy);
* ``ml_pipeline`` — the §5 ML workload (closures, sums, GC'd refs);
* ``l3_churn`` — the §5 L3 workload (linear allocation churn);
* ``linked_counter`` — the Fig. 9 ML/L3 counter program statically linked
  into one Wasm module (cross-language calls, shared heap).

Each entry builds a ``(WasmModule, calls)`` pair where ``calls`` is a list of
``(export, args)`` invocations replayable on any execution engine or by
:func:`repro.opt.run_engine_cross_check`.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Function,
    GetLocal,
    IntBinop,
    LIN,
    Loop,
    MemUnpack,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    Return,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructMalloc,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.typing import check_module
from repro.ffi import Program, counter_program
from repro.l3 import (
    L3Function,
    LBinOp,
    LFree,
    LInt,
    LIntLit,
    LLet,
    LLetPair,
    LNew,
    LSwap,
    LVar,
    compile_l3_module,
    l3_module,
)
from repro.lower import lower_module
from repro.ml import (
    App,
    BinOp,
    Case,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    MLFunction,
    TInt,
    TSum,
    TUnit,
    Unit,
    Var,
    compile_ml_module,
    ml_module,
)
from repro.wasm import WasmInterpreter, validate_module

SUM_N = 2000
COUNTER_TICKS = 30


def _sum_loop():
    body = (
        NumConst(NumType.I32, 0), SetLocal(1),
        Block(arrow([], []), (), (
            Loop(arrow([], []), (
                GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                GetLocal(1), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), SetLocal(1),
                GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                Br(0),
            )),
        )),
        GetLocal(1), Return(),
    )
    module = make_module(functions=[
        Function(funtype([i32()], [i32()]), (SizeConst(32),), body, ("sum",))
    ])
    check_module(module)
    wasm = lower_module(module).wasm
    validate_module(wasm)
    return wasm, [("sum", (SUM_N,))]


def ml_pipeline_module():
    """The §5 ML workload's surface module (shared with the compile bench)."""

    sum_ty = TSum(TUnit(), TInt())
    return ml_module("work", functions=[
        MLFunction("pipeline", "x", TInt(), TInt(),
                   Let("double", Lam("y", TInt(), BinOp("*", Var("y"), IntLit(2))),
                       Case(If(BinOp("<", Var("x"), IntLit(0)), Inl(Unit(), sum_ty), Inr(Var("x"), sum_ty)),
                            "n", IntLit(0),
                            "p", App(Var("double"), Var("p"))))),
    ])


def _ml_pipeline():
    module = ml_pipeline_module()
    wasm = compile_ml_module(module, lower=True).wasm
    validate_module(wasm)
    calls = [("pipeline", (value,)) for value in (21, -3, 0, 100, 7, -1, 55, 13)]
    return wasm, calls


def _l3_churn():
    module = l3_module("work", functions=[
        L3Function("churn", "x", LInt(), LInt(),
                   LLet("o", LNew(LVar("x")),
                        LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                 LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
    ])
    wasm = compile_l3_module(module, lower=True).wasm
    validate_module(wasm)
    calls = [("churn", (value,)) for value in (9, 1, 42, 0, 17, 3, 8, 26)]
    return wasm, calls


def _linked_counter():
    program = Program(counter_program().modules())
    wasm = program.lower().wasm
    validate_module(wasm)
    calls = [(export, ()) for export in sorted(wasm.exported_functions()) if export.endswith("._init")]
    calls.append(("client.client_init", (0,)))
    calls.extend(("client.client_tick", (0,)) for _ in range(COUNTER_TICKS))
    calls.append(("client.client_total", (0,)))
    return wasm, calls


WORKLOADS: dict[str, Callable[[], tuple]] = {
    "sum_loop": _sum_loop,
    "ml_pipeline": _ml_pipeline,
    "l3_churn": _l3_churn,
    "linked_counter": _linked_counter,
}


def run_calls(interpreter: WasmInterpreter, instance, calls) -> list:
    """Replay a call script, returning the per-call results."""

    return [interpreter.invoke(instance, export, list(args)) for export, args in calls]


def timed_rate(fn: Callable[[], object], *, min_time: float = 0.15, max_rounds: int = 10000) -> float:
    """Executions/second of ``fn`` over at least ``min_time`` seconds."""

    fn()  # warm-up (fills caches, triggers lazy imports)
    rounds = 0
    start = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or rounds >= max_rounds:
            return rounds / elapsed


def measure_runtime_throughput(*, min_time: float = 0.15) -> dict:
    """Serving-layer throughput: compile-once/run-many vs the naive path.

    Three series over the Fig. 9 counter program (the cross-language
    workload):

    * ``uncached_instances_per_sec`` — the naive path: every round pays
      link + type-directed lowering + validation + instantiation + ``_init``
      from the source modules;
    * ``cached_instances_per_sec`` — instantiation from a
      :class:`repro.runtime.CompiledProgram` (pipeline memoized by the
      module cache, flat code decoded once at module level);
    * ``pooled_resets_per_sec`` — recycling one pooled instance
      (acquire → reset → release), the run-many hot path;

    plus ``requests_per_sec`` from a :class:`repro.runtime.BatchRunner`
    serving stateful init/tick*/total sessions off the pool.
    """

    from repro.runtime import BatchRunner, ModuleCache, Session, run_initializers_setup

    modules = counter_program().modules()

    uncached = timed_rate(
        lambda: Program(modules).instantiate_wasm(), min_time=min_time, max_rounds=200
    )

    cache = ModuleCache()
    compiled = cache.compile_program(modules)

    def cached_instantiate():
        interpreter, instance = compiled.instantiate()
        run_initializers_setup(interpreter, instance)

    cached = timed_rate(cached_instantiate, min_time=min_time)

    pool = compiled.instance_pool(setup=run_initializers_setup, max_size=2)
    pooled = timed_rate(lambda: pool.release(pool.acquire()), min_time=min_time)

    runner = BatchRunner(pool)
    session = Session(
        calls=(("client.client_init", (0,)),)
        + tuple(("client.client_tick", ()) for _ in range(COUNTER_TICKS))
        + (("client.client_total", ()),)
    )
    report = runner.run([session] * 30)

    return {
        "workload": "linked_counter",
        "uncached_instances_per_sec": round(uncached, 1),
        "cached_instances_per_sec": round(cached, 1),
        "cached_speedup": round(cached / uncached, 1) if uncached else None,
        "pooled_resets_per_sec": round(pooled, 1),
        "requests": report.requests,
        "requests_ok": report.ok_count,
        "requests_trapped": report.trap_count,
        "requests_per_sec": round(report.requests_per_sec, 1) if report.requests_per_sec else None,
        "steps_per_request": report.total_steps // report.requests if report.requests else 0,
    }


def synthetic_body(blocks: int, seed: int = 1) -> tuple:
    """``blocks`` repeated allocate/read/free regions computing ``seed + 1``.

    ``seed`` is baked into the allocated struct's payload, so two bodies with
    different seeds are structurally distinct — which is what makes the
    ``functions=`` axis of :func:`synthetic_module` a real incremental
    workload instead of 1000 copies of one function sharing every
    per-function compile unit.
    """

    body = []
    for _ in range(blocks):
        body.extend([
            NumConst(NumType.I32, seed),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                StructGet(0),
                SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            NumConst(NumType.I32, 1),
            NumBinop(NumType.I32, IntBinop.ADD),
            SetLocal(0),
        ])
    body.append(GetLocal(0))
    body.append(Return())
    return tuple(body)


def synthetic_module(blocks: int, functions: int = 1):
    """``functions`` functions of ``blocks`` allocate/read/free regions each.

    The typechecker scaling workload (shared with ``bench_typechecker.py``):
    every region allocates a linear struct, opens its existential location,
    reads and frees it — exercising the checker's binder shifting, size
    entailment and linearity tracking.  Function ``i`` embeds seed ``i + 1``
    (so every body is structurally distinct) and exports ``main`` (``i = 0``)
    or ``f{i}``; the many-small-functions shape is the incremental-compile
    workload (:func:`measure_incremental_compile`).
    """

    return make_module(functions=[
        Function(
            funtype([], [i32()]),
            (SizeConst(32),),
            synthetic_body(blocks, seed=index + 1),
            ("main",) if index == 0 else (f"f{index}",),
        )
        for index in range(functions)
    ])


def edit_one_function(module, index: int, *, blocks: int = 1):
    """``module`` with function ``index``'s body rebuilt under a fresh seed.

    Every *other* ``Function`` object is reused as-is, so its memoized
    structural digest makes the edited module's per-function unit keys an
    O(1) lookup — the scenario the incremental pipeline is built for.
    """

    import dataclasses

    functions = list(module.functions)
    functions[index] = dataclasses.replace(
        functions[index], body=synthetic_body(blocks, seed=len(functions) + index + 1)
    )
    return make_module(functions=functions, name=module.name)


def measure_incremental_compile(*, functions: int = 1000, blocks: int = 1) -> dict:
    """Cold vs one-function-edit compile walls through the unit cache.

    Compiles a ``functions``-function synthetic module cold on a fresh
    :class:`repro.runtime.ModuleCache` (compiled engine, ``O1``), then edits
    exactly one function and recompiles on the *same* cache: every
    module-level stage misses (the content changed) but all unchanged
    functions reuse their typecheck/lower/optimize/validate/decode/translate
    units.  Returns both walls, the speedup, and the per-stage unit deltas
    of the incremental recompile.
    """

    from repro.api import CompileConfig
    from repro.runtime import ModuleCache

    config = CompileConfig(opt_level="O1", engine="compiled", cache="private")
    base = synthetic_module(blocks, functions=functions)
    cache = ModuleCache()

    start = time.perf_counter()
    cache.compile_program(base, config=config)
    cold_s = time.perf_counter() - start

    edited = edit_one_function(base, functions // 2, blocks=blocks)
    units_before = cache.units.snapshot()
    start = time.perf_counter()
    cache.compile_program(edited, config=config)
    incremental_s = time.perf_counter() - start

    return {
        "functions": functions,
        "blocks": blocks,
        "cold_wall_s": round(cold_s, 4),
        "incremental_wall_s": round(incremental_s, 4),
        "speedup": round(cold_s / incremental_s, 1) if incremental_s else None,
        "units": cache.units.delta(units_before),
    }


def measure_parallel_compile(*, functions: int = 300, blocks: int = 1,
                             workers: int = 4) -> dict:
    """Cold serial vs cold parallel vs warm-disk parallel compile walls.

    Three cold compiles of the same synthetic module (compiled engine,
    ``O1``): serial (``compile_workers=1``), parallel (``compile_workers=
    workers`` fanning the per-function units over a fork pool), and
    parallel against a :class:`repro.cluster.DiskCache` a prior parallel
    compile already populated (the ``unit.*``/``program`` entries make the
    warm run skip the pool entirely).  Also asserts the bit-identity
    contract: the parallel-compiled module must equal the serial one.
    """

    import tempfile

    from repro.api import CompileConfig
    from repro.cluster import DiskCache
    from repro.runtime import ModuleCache

    module = synthetic_module(blocks, functions=functions)
    serial_config = CompileConfig(opt_level="O1", engine="compiled", cache="private")
    parallel_config = serial_config.replace(compile_workers=workers)

    start = time.perf_counter()
    serial = ModuleCache().compile_program(module, config=serial_config)
    serial_s = time.perf_counter() - start

    parallel_cache = ModuleCache()
    start = time.perf_counter()
    parallel = parallel_cache.compile_program(module, config=parallel_config)
    parallel_s = time.perf_counter() - start
    report = parallel_cache.last_parcompile

    with tempfile.TemporaryDirectory(prefix="repro-parcompile-") as root:
        disk = DiskCache(root)
        ModuleCache(disk=disk).compile_program(module, config=parallel_config)
        warm_cache = ModuleCache(disk=disk)
        start = time.perf_counter()
        warm = warm_cache.compile_program(module, config=parallel_config)
        warm_s = time.perf_counter() - start
        warm_identical = warm.wasm == serial.wasm

    return {
        "functions": functions,
        "blocks": blocks,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "warm_disk_parallel_wall_s": round(warm_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": parallel.wasm == serial.wasm
        and parallel.key == serial.key
        and warm_identical,
        "worker_deaths": report.worker_deaths if report else None,
        "fallbacks": list(report.fallbacks) if report else None,
        "units_seeded": dict(report.units_seeded) if report else None,
    }


def best_of(fn: Callable[[], object], repeat: int) -> float:
    """Best wall time of ``repeat`` calls to ``fn`` (one warm-up first)."""

    fn()
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_compile_stages(*, sizes=(10, 50, 200), repeat: int = 3) -> dict:
    """Per-stage compile timings for the BENCH_results.json trajectory.

    Records, per synthetic module size: core typecheck, lower (typecheck-
    driven lowering) and flat-code decode wall times; plus the ML frontend's
    surface typecheck on the shared ``ml_pipeline`` module, and the
    interned-vs-structural checker speedup on the largest size (the PR 5
    tentpole metric — asserted as a CI floor in ``bench_typechecker.py``).
    """

    from repro.core.syntax import interning_disabled
    from repro.ml import check_module as check_ml_module
    from repro.wasm.decode import decode_module

    results: dict[str, object] = {}

    ml = ml_pipeline_module()
    results["frontend_typecheck"] = {
        "module": "ml_pipeline",
        "wall_s": round(best_of(lambda: check_ml_module(ml), repeat), 6),
    }

    for blocks in sizes:
        module = synthetic_module(blocks)
        instructions = module.functions[0].instruction_count()
        typecheck_s = best_of(lambda: check_module(module), repeat)
        lower_s = best_of(lambda: lower_module(module), repeat)

        # decode_module memoizes per WasmModule object, so decode a freshly
        # lowered module each round to time real work.
        def decode_fresh() -> float:
            wasm = lower_module(module).wasm
            start = time.perf_counter()
            decode_module(wasm)
            return time.perf_counter() - start

        decode_fresh()  # warm-up
        decode_s = min(decode_fresh() for _ in range(repeat))

        results[f"synthetic_{blocks}"] = {
            "instructions": instructions,
            "typecheck_wall_s": round(typecheck_s, 6),
            "typecheck_instrs_per_sec": round(instructions / typecheck_s) if typecheck_s else None,
            "lower_wall_s": round(lower_s, 6),
            "decode_wall_s": round(decode_s, 6),
        }

    largest = max(sizes)
    interned_module = synthetic_module(largest)
    interned_s = best_of(lambda: check_module(interned_module), repeat)
    with interning_disabled():
        baseline_module = synthetic_module(largest)
        baseline_s = best_of(lambda: check_module(baseline_module), repeat)
    results["checker_speedup_vs_structural"] = {
        "blocks": largest,
        "interned_wall_s": round(interned_s, 6),
        "structural_wall_s": round(baseline_s, 6),
        "speedup": round(baseline_s / interned_s, 2) if interned_s else None,
    }
    return results


def measure_engine(wasm, calls, engine: str, *, min_time: float = 0.3, max_rounds: int = 300):
    """Time repeated replays of ``calls`` on one engine.

    Returns ``(steps_per_call_script, best_seconds_per_call_script)`` using
    best-of timing over enough rounds to fill ``min_time`` seconds, so the
    steps/sec ratio between engines is stable under scheduler noise.
    """

    interpreter = WasmInterpreter(engine=engine)
    instance = interpreter.instantiate(wasm)
    run_calls(interpreter, instance, calls)  # warm-up
    before = interpreter.steps
    run_calls(interpreter, instance, calls)
    steps = interpreter.steps - before

    best = float("inf")
    elapsed_total = 0.0
    rounds = 0
    while elapsed_total < min_time and rounds < max_rounds:
        start = time.perf_counter()
        run_calls(interpreter, instance, calls)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elapsed_total += elapsed
        rounds += 1
    return steps, best


# ---------------------------------------------------------------------------
# PR 9: cluster serving + disk-cache warm starts
# ---------------------------------------------------------------------------


def counter_sessions(count: int, *, ticks: int = COUNTER_TICKS) -> list:
    """``count`` independent init/tick*/total sessions, ids spread so the
    cluster's sticky router distributes them across workers."""

    from repro.runtime import Session

    calls = (
        (("client.client_init", (0,)),)
        + tuple(("client.client_tick", ()) for _ in range(ticks))
        + (("client.client_total", ()),)
    )
    return [Session(calls=calls, session_id=f"bench-{i}") for i in range(count)]


def measure_cluster_throughput(*, workers: int = 4, sessions: int = 60,
                               rounds: int = 3) -> dict:
    """Aggregate cluster rps vs the single-process serving baseline.

    Serves the same batch of sticky counter sessions through an in-process
    :class:`repro.api.Service` and through ``api.serve(..., workers=N)``
    (the :class:`repro.cluster.ClusterService` fan-out), best-of ``rounds``
    each.  Records ``cpu_count`` alongside the speedup: on a single-CPU host
    N workers time-slice one core and the wire overhead makes the cluster
    *slower* — the ≥ 3x gate in ``bench_cluster.py`` therefore only arms
    when the host has at least ``workers`` CPUs.
    """

    import os

    from repro import api

    scenario = counter_program()

    def batch_rps(service) -> tuple[float, int]:
        best = 0.0
        ok = 0
        for _ in range(rounds):
            report = service.run(counter_sessions(sessions))
            ok = report.ok_count
            best = max(best, report.requests_per_sec or 0.0)
        return best, ok

    with api.serve(scenario, {"cache": "private"}) as single:
        single_rps, single_ok = batch_rps(single)

    with api.serve(scenario, {"cache": "private", "workers": workers}) as cluster:
        cluster_rps, cluster_ok = batch_rps(cluster)
        cluster_workers = cluster.workers

    return {
        "workload": "linked_counter",
        "workers": cluster_workers,
        "sessions": sessions,
        "cpu_count": os.cpu_count(),
        "single_ok": single_ok,
        "cluster_ok": cluster_ok,
        "single_requests_per_sec": round(single_rps, 1),
        "cluster_requests_per_sec": round(cluster_rps, 1),
        "speedup": round(cluster_rps / single_rps, 2) if single_rps else None,
    }


_WARM_START_CHILD = """
import json, sys, time
sys.path[:0] = {paths!r}
from workloads import synthetic_module
from repro import api
module = synthetic_module(1, functions={functions})
start = time.perf_counter()
compiled = api.compile(module, {{"opt_level": "O2", "cache_dir": {cache_dir!r}}})
wall = time.perf_counter() - start
print(json.dumps({{"wall": wall, "program": compiled.diagnostics.cache["program"]}}))
"""


def _warm_start_child(cache_dir: str, functions: int) -> dict:
    """One cold-process compile against ``cache_dir``, timed in the child."""

    import json
    import os
    import subprocess
    import sys

    bench_dir = os.path.dirname(os.path.abspath(__file__))
    src_dir = os.path.join(os.path.dirname(bench_dir), "src")
    script = _WARM_START_CHILD.format(
        paths=[src_dir, bench_dir], functions=functions, cache_dir=cache_dir
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def measure_disk_warm_start(*, functions: int = 600, warm_repeats: int = 2) -> dict:
    """Cold-compile vs disk-warm-start walls, each in a fresh process.

    Every sample is a genuinely cold *process* (``subprocess`` — no
    inherited memo, no forked caches): the first child compiles a
    ``functions``-function module into an empty cache directory (full
    pipeline + disk write), the next children start cold against the now
    warm directory and load the program from disk (fingerprint key lookup +
    unpickle + decode adoption).  The warm wall is the best of
    ``warm_repeats`` children; both walls exclude interpreter startup (the
    child times only ``api.compile``).
    """

    import shutil
    import tempfile

    cache_dir = tempfile.mkdtemp(prefix="repro-warmstart-")
    try:
        cold = _warm_start_child(cache_dir, functions)
        warm_walls = []
        warm_diag = None
        for _ in range(max(1, warm_repeats)):
            record = _warm_start_child(cache_dir, functions)
            warm_walls.append(record["wall"])
            warm_diag = record["program"]
        warm_wall = min(warm_walls)
        return {
            "functions": functions,
            "cold_wall_s": round(cold["wall"], 4),
            "warm_wall_s": round(warm_wall, 4),
            "speedup": round(cold["wall"] / warm_wall, 1) if warm_wall else None,
            "program_cold": cold["program"],
            "program_warm": warm_diag,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
