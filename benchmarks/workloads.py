"""Shared benchmark workloads: lowered Wasm modules plus call scripts.

Used by ``bench_interpreters.py`` (engine head-to-head) and ``run_all.py``
(the cross-PR perf tracker and the tree-vs-flat cross-check smoke gate), so
the numbers and the differential checks always talk about the same programs:

* ``sum_loop`` — a hand-written RichWasm counting loop (branch heavy);
* ``ml_pipeline`` — the §5 ML workload (closures, sums, GC'd refs);
* ``l3_churn`` — the §5 L3 workload (linear allocation churn);
* ``linked_counter`` — the Fig. 9 ML/L3 counter program statically linked
  into one Wasm module (cross-language calls, shared heap).

Each entry builds a ``(WasmModule, calls)`` pair where ``calls`` is a list of
``(export, args)`` invocations replayable on any execution engine or by
:func:`repro.opt.run_engine_cross_check`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Function,
    GetLocal,
    IntBinop,
    Loop,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    Return,
    SetLocal,
    SizeConst,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.typing import check_module
from repro.ffi import Program, counter_program
from repro.l3 import (
    L3Function,
    LBinOp,
    LFree,
    LInt,
    LIntLit,
    LLet,
    LLetPair,
    LNew,
    LSwap,
    LVar,
    compile_l3_module,
    l3_module,
)
from repro.lower import lower_module
from repro.ml import (
    App,
    BinOp,
    Case,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    MLFunction,
    TInt,
    TSum,
    TUnit,
    Unit,
    Var,
    compile_ml_module,
    ml_module,
)
from repro.wasm import WasmInterpreter, validate_module

SUM_N = 2000
COUNTER_TICKS = 30


def _sum_loop():
    body = (
        NumConst(NumType.I32, 0), SetLocal(1),
        Block(arrow([], []), (), (
            Loop(arrow([], []), (
                GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                GetLocal(1), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), SetLocal(1),
                GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                Br(0),
            )),
        )),
        GetLocal(1), Return(),
    )
    module = make_module(functions=[
        Function(funtype([i32()], [i32()]), (SizeConst(32),), body, ("sum",))
    ])
    check_module(module)
    wasm = lower_module(module).wasm
    validate_module(wasm)
    return wasm, [("sum", (SUM_N,))]


def _ml_pipeline():
    sum_ty = TSum(TUnit(), TInt())
    module = ml_module("work", functions=[
        MLFunction("pipeline", "x", TInt(), TInt(),
                   Let("double", Lam("y", TInt(), BinOp("*", Var("y"), IntLit(2))),
                       Case(If(BinOp("<", Var("x"), IntLit(0)), Inl(Unit(), sum_ty), Inr(Var("x"), sum_ty)),
                            "n", IntLit(0),
                            "p", App(Var("double"), Var("p"))))),
    ])
    wasm = compile_ml_module(module, lower=True).wasm
    validate_module(wasm)
    calls = [("pipeline", (value,)) for value in (21, -3, 0, 100, 7, -1, 55, 13)]
    return wasm, calls


def _l3_churn():
    module = l3_module("work", functions=[
        L3Function("churn", "x", LInt(), LInt(),
                   LLet("o", LNew(LVar("x")),
                        LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                 LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
    ])
    wasm = compile_l3_module(module, lower=True).wasm
    validate_module(wasm)
    calls = [("churn", (value,)) for value in (9, 1, 42, 0, 17, 3, 8, 26)]
    return wasm, calls


def _linked_counter():
    program = Program(counter_program().modules())
    wasm = program.lower().wasm
    validate_module(wasm)
    calls = [(export, ()) for export in sorted(wasm.exported_functions()) if export.endswith("._init")]
    calls.append(("client.client_init", (0,)))
    calls.extend(("client.client_tick", (0,)) for _ in range(COUNTER_TICKS))
    calls.append(("client.client_total", (0,)))
    return wasm, calls


WORKLOADS: dict[str, Callable[[], tuple]] = {
    "sum_loop": _sum_loop,
    "ml_pipeline": _ml_pipeline,
    "l3_churn": _l3_churn,
    "linked_counter": _linked_counter,
}


def run_calls(interpreter: WasmInterpreter, instance, calls) -> list:
    """Replay a call script, returning the per-call results."""

    return [interpreter.invoke(instance, export, list(args)) for export, args in calls]


def timed_rate(fn: Callable[[], object], *, min_time: float = 0.15, max_rounds: int = 10000) -> float:
    """Executions/second of ``fn`` over at least ``min_time`` seconds."""

    fn()  # warm-up (fills caches, triggers lazy imports)
    rounds = 0
    start = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or rounds >= max_rounds:
            return rounds / elapsed


def measure_runtime_throughput(*, min_time: float = 0.15) -> dict:
    """Serving-layer throughput: compile-once/run-many vs the naive path.

    Three series over the Fig. 9 counter program (the cross-language
    workload):

    * ``uncached_instances_per_sec`` — the naive path: every round pays
      link + type-directed lowering + validation + instantiation + ``_init``
      from the source modules;
    * ``cached_instances_per_sec`` — instantiation from a
      :class:`repro.runtime.CompiledProgram` (pipeline memoized by the
      module cache, flat code decoded once at module level);
    * ``pooled_resets_per_sec`` — recycling one pooled instance
      (acquire → reset → release), the run-many hot path;

    plus ``requests_per_sec`` from a :class:`repro.runtime.BatchRunner`
    serving stateful init/tick*/total sessions off the pool.
    """

    from repro.runtime import BatchRunner, ModuleCache, Session, run_initializers_setup

    modules = counter_program().modules()

    uncached = timed_rate(
        lambda: Program(modules).instantiate_wasm(), min_time=min_time, max_rounds=200
    )

    cache = ModuleCache()
    compiled = cache.compile_program(modules)

    def cached_instantiate():
        interpreter, instance = compiled.instantiate()
        run_initializers_setup(interpreter, instance)

    cached = timed_rate(cached_instantiate, min_time=min_time)

    pool = compiled.instance_pool(setup=run_initializers_setup, max_size=2)
    pooled = timed_rate(lambda: pool.release(pool.acquire()), min_time=min_time)

    runner = BatchRunner(pool)
    session = Session(
        calls=(("client.client_init", (0,)),)
        + tuple(("client.client_tick", ()) for _ in range(COUNTER_TICKS))
        + (("client.client_total", ()),)
    )
    report = runner.run([session] * 30)

    return {
        "workload": "linked_counter",
        "uncached_instances_per_sec": round(uncached, 1),
        "cached_instances_per_sec": round(cached, 1),
        "cached_speedup": round(cached / uncached, 1) if uncached else None,
        "pooled_resets_per_sec": round(pooled, 1),
        "requests": report.requests,
        "requests_ok": report.ok_count,
        "requests_trapped": report.trap_count,
        "requests_per_sec": round(report.requests_per_sec, 1) if report.requests_per_sec else None,
        "steps_per_request": report.total_steps // report.requests if report.requests else 0,
    }


def measure_engine(wasm, calls, engine: str, *, min_time: float = 0.3, max_rounds: int = 300):
    """Time repeated replays of ``calls`` on one engine.

    Returns ``(steps_per_call_script, best_seconds_per_call_script)`` using
    best-of timing over enough rounds to fill ``min_time`` seconds, so the
    steps/sec ratio between engines is stable under scheduler noise.
    """

    interpreter = WasmInterpreter(engine=engine)
    instance = interpreter.instantiate(wasm)
    run_calls(interpreter, instance, calls)  # warm-up
    before = interpreter.steps
    run_calls(interpreter, instance, calls)
    steps = interpreter.steps - before

    best = float("inf")
    elapsed_total = 0.0
    rounds = 0
    while elapsed_total < min_time and rounds < max_rounds:
        start = time.perf_counter()
        run_calls(interpreter, instance, calls)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elapsed_total += elapsed
        rounds += 1
    return steps, best
