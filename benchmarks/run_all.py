#!/usr/bin/env python3
"""Run the benchmark suite and write a machine-readable BENCH_results.json.

Tracks the perf trajectory across PRs: every run records, per workload, the
step count, best wall time, steps/sec, and static instruction count (on the
``--engine`` engine, plus a per-engine steps/sec breakdown across all
registered engines); the per-stage compile timings (frontend typecheck,
core typecheck, lower, decode) with the interned-vs-structural checker
speedup; and the three-engine (tree/flat/compiled) differential cross-check
verdicts.  In full mode
every ``bench_*.py`` file is additionally executed under pytest and its wall
time and exit status recorded.

Usage::

    python benchmarks/run_all.py            # full run (pytest over bench_*)
    python benchmarks/run_all.py --smoke    # workloads + cross-check only
    python benchmarks/run_all.py --engine tree --output /tmp/results.json

The process exits non-zero if any engine cross-check reports a divergence or
any benchmark file fails — the CI smoke job is gated on exactly this.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

for path in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from repro.obs import (  # noqa: E402
    NOOP_TRACER,
    JsonlSink,
    Tracer,
    default_registry,
    get_tracer,
    set_tracer,
)
from repro.opt import run_engine_cross_check, run_pool_reset_cross_check  # noqa: E402
from repro.wasm import available_engines  # noqa: E402

from workloads import (  # noqa: E402
    WORKLOADS,
    measure_cluster_throughput,
    measure_compile_stages,
    measure_disk_warm_start,
    measure_engine,
    measure_incremental_compile,
    measure_parallel_compile,
    measure_runtime_throughput,
)


def measure_workloads(engine: str) -> dict:
    """Per-workload timings on ``engine``, plus an all-engines breakdown.

    The top-level numbers stay keyed to the requested ``--engine`` (that is
    what the regression gate compares), while ``engines`` records steps/sec
    for every registered engine so one results file shows the whole
    tree → flat → compiled trajectory.
    """

    results: dict[str, dict] = {}
    for name, build in sorted(WORKLOADS.items()):
        wasm, calls = build()
        per_engine: dict[str, dict] = {}
        for candidate in available_engines():
            steps, best = measure_engine(wasm, calls, candidate)
            per_engine[candidate] = {
                "steps": steps,
                "wall_s": round(best, 6),
                "steps_per_sec": round(steps / best) if best else None,
            }
        primary = per_engine[engine]
        results[name] = {
            "engine": engine,
            "calls": len(calls),
            "steps": primary["steps"],
            "instructions": wasm.instruction_count(),
            "wall_s": primary["wall_s"],
            "steps_per_sec": primary["steps_per_sec"],
            "engines": per_engine,
        }
    return results


def cross_check_workloads() -> tuple[dict, bool]:
    results: dict[str, dict] = {}
    all_ok = True
    for name, build in sorted(WORKLOADS.items()):
        wasm, calls = build()
        report = run_engine_cross_check(wasm, calls)
        pool_reports = run_pool_reset_cross_check(wasm, calls)
        pool_ok = all(entry.ok for entry in pool_reports.values())
        results[name] = {
            "ok": report.ok and pool_ok,
            "calls": len(calls),
            "outcomes": len(report.outcomes),
            "steps": report.baseline_steps,
            "pool_reset_ok": pool_ok,
            "detail": None
            if report.ok and pool_ok
            else "\n".join(
                [report.format_report()]
                + [f"pool-reset[{engine}]: {entry.format_report()}"
                   for engine, entry in pool_reports.items() if not entry.ok]
            ),
        }
        all_ok = all_ok and report.ok and pool_ok
    return results, all_ok


def check_regression(fresh: dict, baseline_path: Path, *, threshold: float = 0.25) -> tuple[dict, bool]:
    """Compare fresh steps/sec against the committed baseline.

    The verdict uses the *normalized* ratio — each workload's fresh/baseline
    ratio divided by the median ratio across workloads — so the gate is
    machine-speed independent: a uniformly slower CI runner shifts every raw
    ratio but leaves the normalized ones at ~1.0, while a regression that
    hits some workload harder than the rest drops its normalized ratio below
    ``1 - threshold`` and fails.  Raw ratios are recorded alongside for
    same-machine comparisons (where a uniform drop *is* a finding).
    """

    if not baseline_path.exists():
        return {"checked": False, "reason": f"no baseline at {baseline_path}"}, True
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return {"checked": False, "reason": f"unreadable baseline: {exc}"}, True

    base_workloads = baseline.get("workloads") or {}
    ratios: dict[str, float] = {}
    for name, entry in fresh.items():
        base = base_workloads.get(name, {})
        if base.get("steps_per_sec") and entry.get("steps_per_sec") and base.get("engine") == entry.get("engine"):
            ratios[name] = entry["steps_per_sec"] / base["steps_per_sec"]
    if not ratios:
        return {"checked": False, "reason": "no comparable workloads in baseline"}, True

    ordered = sorted(ratios.values())
    median = ordered[len(ordered) // 2]
    detail: dict[str, dict] = {}
    all_ok = True
    for name, ratio in sorted(ratios.items()):
        normalized = ratio / median if median else 1.0
        ok = normalized >= 1.0 - threshold
        detail[name] = {
            "ratio": round(ratio, 3),
            "normalized": round(normalized, 3),
            "ok": ok,
        }
        all_ok = all_ok and ok
    return {
        "checked": True,
        "threshold": threshold,
        "median_ratio": round(median, 3),
        "workloads": detail,
    }, all_ok


def run_bench_files() -> tuple[dict, bool]:
    results: dict[str, dict] = {}
    all_ok = True
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench), "-q", "--benchmark-disable"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - start
        ok = proc.returncode == 0
        results[bench.name] = {
            "ok": ok,
            "wall_s": round(wall, 3),
            "returncode": proc.returncode,
        }
        if not ok:
            results[bench.name]["tail"] = proc.stdout.splitlines()[-15:]
            all_ok = False
        print(f"  {bench.name}: {'ok' if ok else 'FAIL'} ({wall:.1f}s)")
    return results, all_ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="workload timings + engine cross-check only (skip the pytest benchmark files)")
    parser.add_argument("--engine", default="flat", choices=available_engines(),
                        help="engine used for the workload timings (default: flat)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_results.json"),
                        help="where to write the JSON results")
    parser.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_results.json"),
                        help="committed results the regression gate compares against (smoke mode)")
    parser.add_argument("--no-regression-gate", action="store_true",
                        help="skip the steps/sec regression gate (e.g. on a machine unlike the baseline's)")
    parser.add_argument("--obs-jsonl", metavar="PATH", default=None,
                        help="export repro.obs telemetry (per-phase spans, request spans, "
                             "metrics snapshot) as schema-versioned JSONL to PATH")
    args = parser.parse_args(argv)

    sink = None
    if args.obs_jsonl:
        sink = JsonlSink(args.obs_jsonl)
        set_tracer(Tracer(sink=sink))
    try:
        return _run(args, sink)
    finally:
        if sink is not None:
            set_tracer(NOOP_TRACER)
            sink.close()
            print(f"wrote {sink.records_written} obs record(s) to {args.obs_jsonl}")


def _run(args, sink) -> int:

    results = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
    }

    print(f"workload timings on the {args.engine!r} engine ...")
    with get_tracer().span("bench.workloads", engine=args.engine):
        results["workloads"] = measure_workloads(args.engine)
    for name, entry in results["workloads"].items():
        breakdown = ", ".join(
            f"{engine} {stats['steps_per_sec']:,}" for engine, stats in entry["engines"].items()
        )
        print(f"  {name}: {entry['steps_per_sec']:,} steps/s ({entry['steps']} steps, "
              f"{entry['calls']} calls; {breakdown})")

    regression_ok = True
    if args.smoke and not args.no_regression_gate:
        print("steps/sec regression gate vs committed baseline ...")
        results["regression_gate"], regression_ok = check_regression(
            results["workloads"], Path(args.baseline)
        )
        gate = results["regression_gate"]
        if not gate["checked"]:
            print(f"  skipped: {gate['reason']}")
        else:
            for name, entry in gate["workloads"].items():
                print(f"  {name}: {'ok' if entry['ok'] else 'REGRESSION'} "
                      f"(x{entry['ratio']} of baseline, x{entry['normalized']} normalized)")

    print("compile-stage timings (frontend typecheck / core typecheck / lower / decode) ...")
    with get_tracer().span("bench.compile_stages"):
        results["compile"] = measure_compile_stages()
    for name, entry in results["compile"].items():
        if name.startswith("synthetic_"):
            print(f"  {name}: typecheck {entry['typecheck_instrs_per_sec']:,} instrs/s, "
                  f"lower {entry['lower_wall_s']}s, decode {entry['decode_wall_s']}s")
    speedup = results["compile"]["checker_speedup_vs_structural"]
    print(f"  interned checker vs structural baseline: {speedup['speedup']}x "
          f"on {speedup['blocks']} blocks")

    print("incremental compile (one-function edit vs cold, per-function units) ...")
    with get_tracer().span("bench.incremental_compile"):
        results["compile"]["incremental"] = measure_incremental_compile()
    incremental = results["compile"]["incremental"]
    print(f"  {incremental['functions']} functions: cold {incremental['cold_wall_s']}s -> "
          f"edit {incremental['incremental_wall_s']}s ({incremental['speedup']}x)")

    print("parallel compile (per-function units over a worker pool) ...")
    with get_tracer().span("bench.parcompile"):
        results["parcompile"] = measure_parallel_compile(
            functions=120 if args.smoke else 600,
            workers=2 if args.smoke else 4,
        )
    parcompile = results["parcompile"]
    print(f"  {parcompile['functions']} functions / {parcompile['workers']} workers: "
          f"cold serial {parcompile['serial_wall_s']}s -> "
          f"cold parallel {parcompile['parallel_wall_s']}s ({parcompile['speedup']}x), "
          f"warm-disk parallel {parcompile['warm_disk_parallel_wall_s']}s")
    parcompile_ok = bool(parcompile["identical"]) and not parcompile["fallbacks"]
    if not parcompile_ok:
        print(f"  PARALLEL COMPILE FAILED IDENTITY/FALLBACK CHECK: {parcompile}")

    print("runtime throughput (compile-once/run-many vs naive path) ...")
    with get_tracer().span("bench.runtime_throughput"):
        results["runtime"] = measure_runtime_throughput()
    runtime = results["runtime"]
    print(f"  instantiations/s: {runtime['uncached_instances_per_sec']:,} uncached -> "
          f"{runtime['cached_instances_per_sec']:,} cached ({runtime['cached_speedup']}x), "
          f"{runtime['pooled_resets_per_sec']:,} pooled resets/s")
    print(f"  requests/s: {runtime['requests_per_sec']:,} "
          f"({runtime['requests_ok']}/{runtime['requests']} ok, "
          f"{runtime['steps_per_request']} steps/request)")

    print("cluster serving (multi-process fan-out) + disk-cache warm start ...")
    with get_tracer().span("bench.cluster"):
        cluster_workers = 2 if args.smoke else 4
        results["cluster"] = {
            "throughput": measure_cluster_throughput(
                workers=cluster_workers,
                sessions=20 if args.smoke else 60,
                rounds=1 if args.smoke else 3,
            ),
            "disk_warm_start": measure_disk_warm_start(
                functions=100 if args.smoke else 600,
                warm_repeats=1 if args.smoke else 2,
            ),
        }
    throughput = results["cluster"]["throughput"]
    print(f"  {throughput['workers']} workers: {throughput['single_requests_per_sec']:,} rps single -> "
          f"{throughput['cluster_requests_per_sec']:,} rps cluster "
          f"({throughput['speedup']}x on {throughput['cpu_count']} CPUs)")
    warm = results["cluster"]["disk_warm_start"]
    print(f"  disk warm start: cold {warm['cold_wall_s']}s -> warm {warm['warm_wall_s']}s "
          f"({warm['speedup']}x, program {warm['program_cold']} -> {warm['program_warm']})")
    warm_ok = warm["program_cold"] == "miss" and warm["program_warm"] == "hit"
    if not warm_ok:
        print("  DISK WARM START FAILED: warm child did not hit the program cache")

    print("three-engine (tree/flat/compiled) differential + pool-reset cross-check ...")
    with get_tracer().span("bench.cross_check"):
        results["cross_check"], cross_ok = cross_check_workloads()
    for name, entry in results["cross_check"].items():
        print(f"  {name}: {'ok' if entry['ok'] else 'DIVERGENCE'}")
        if not entry["ok"]:
            print(entry["detail"])

    bench_ok = True
    if not args.smoke:
        print("benchmark files ...")
        results["benchmarks"], bench_ok = run_bench_files()

    results["ok"] = cross_ok and bench_ok and regression_ok and warm_ok and parcompile_ok
    if sink is not None:
        sink.emit_event("bench.done", mode=results["mode"], ok=results["ok"])
        sink.emit_metrics(default_registry())
    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} (ok={results['ok']})")
    return 0 if results["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
