"""ALLOC — §6: the free-list allocator emitted by the lowering.

Exercises allocate/free churn through lowered Wasm code and checks the
allocator's key property (freed blocks are reused, so churn does not grow the
memory), then benchmarks allocation throughput.
"""

import pytest

from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Function,
    GetLocal,
    IntBinop,
    LIN,
    Loop,
    MemUnpack,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    Return,
    SetLocal,
    SizeConst,
    StructFree,
    StructMalloc,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.api import CompileConfig
from repro.core.typing import check_module
from repro.lower import lower_module
from repro.wasm import WasmInterpreter, validate_module


def churn_module():
    """Allocate and immediately free N linear cells."""

    body = (
        Block(arrow([], []), (), (
            Loop(arrow([], []), (
                GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                NumConst(NumType.I32, 1),
                StructMalloc((SizeConst(32),), LIN),
                MemUnpack(arrow([], []), (), (StructFree(),)),
                GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                Br(0),
            )),
        )),
        NumConst(NumType.I32, 0),
        Return(),
    )
    return make_module(functions=[Function(funtype([i32()], [i32()]), (), body, ("churn",))])


@pytest.fixture(scope="module")
def churn_instance():
    module = churn_module()
    check_module(module)
    lowered = lower_module(module, config=CompileConfig(memory_pages=1))
    validate_module(lowered.wasm)
    interp = WasmInterpreter()
    return interp, interp.instantiate(lowered.wasm)


def test_churn_reuses_freed_blocks(churn_instance):
    interp, instance = churn_instance
    # 2000 allocations of 8-byte blocks would need ~32 KiB without reuse; one
    # page (64 KiB) is plenty *only if* the free list works.
    assert interp.invoke(instance, "churn", [2000]) == [0]
    assert instance.memory.size_pages() == 1


def test_interleaved_allocations():
    # Allocations that outlive each other still succeed (bump path).
    module = churn_module()
    check_module(module)
    lowered = lower_module(module)
    interp = WasmInterpreter()
    instance = interp.instantiate(lowered.wasm)
    assert interp.invoke(instance, "churn", [10]) == [0]


@pytest.mark.benchmark(group="allocator")
def test_bench_alloc_free_churn(benchmark, churn_instance):
    interp, instance = churn_instance
    result = benchmark(interp.invoke, instance, "churn", [500])
    assert result == [0]
