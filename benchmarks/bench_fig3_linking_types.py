"""FIG3 — Fig. 3: linking types; unsafe variant rejected, safe variant runs.

Reproduces the paper's Fig. 3 shape: with linking types the boundary types
agree, the unsafe ``stash`` (which duplicates the linear reference) fails the
RichWasm type check, and the repaired program links and runs.  Benchmarks
measure the rejection path and the end-to-end safe execution.
"""

import pytest

from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module
from repro.core.typing.errors import RichWasmTypeError
from repro.ffi import Program, fig3_programs


def reject_unsafe():
    unsafe, _ = fig3_programs()
    try:
        check_module(unsafe.ml)
    except RichWasmTypeError as error:
        return type(error).__name__
    raise AssertionError("unsafe stash must be rejected")


def run_safe(rounds: int = 3):
    _, safe = fig3_programs()
    program = Program(safe.modules())
    instance = program.instantiate()
    results = []
    for i in range(rounds):
        instance.invoke("client", "store", [NumV(NumType.I32, i)])
        results.append(instance.invoke("client", "take", [UnitV()])[0].value)
    return results


def test_unsafe_variant_rejected():
    assert reject_unsafe()


def test_safe_variant_round_trips_values():
    assert run_safe(4) == [0, 1, 2, 3]


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_rejection(benchmark):
    assert benchmark(reject_unsafe)


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_safe_execution(benchmark):
    assert benchmark(run_safe, 3) == [0, 1, 2]
