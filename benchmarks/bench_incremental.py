"""COMPILE — function-granular incremental recompilation.

The PR 8 tentpole series: a 1000-function synthetic module is compiled cold
on a fresh :class:`repro.runtime.ModuleCache`, then exactly one function is
edited and the module recompiled on the same cache.  Every module-level
stage misses (the content changed) but all unchanged functions come back
from the per-function unit cache (:mod:`repro.compilepipe`), so the
recompile must land at least ``REPRO_INCREMENTAL_SPEEDUP_FLOOR`` (default
20x) under the cold wall.

Correctness is gated harder than speed: the incrementally recomposed
artifacts must be *bit-identical* to a cold monolithic compile — the
assembled ``WasmModule`` dataclass-equal and content-key-equal to a
unit-cache-free lowering, and the three execution engines
(tree/flat/compiled) must agree on results, traps, memory, globals and
step counts when instantiated from the incremental artifacts
(:func:`repro.opt.run_engine_cross_check`).
"""

import os

import pytest

from repro.api import CompileConfig
from repro.lower import lower_module
from repro.opt import run_engine_cross_check
from repro.runtime import ModuleCache
from repro.runtime.cache import content_key
from repro.wasm import validate_module

from workloads import edit_one_function, measure_incremental_compile, synthetic_module

# Measured headroom is ~25x at 1000 functions; overridable so a heavily
# contended runner can relax the gate without a code change (same contract
# as REPRO_COMPILED_SPEEDUP_FLOOR in bench_interpreters.py).
INCREMENTAL_SPEEDUP_FLOOR = float(os.environ.get("REPRO_INCREMENTAL_SPEEDUP_FLOOR", "20.0"))

FUNCTIONS = 40
EDITED = FUNCTIONS // 2


def _incremental_compile(opt_level="O2"):
    """Cold-compile the base module, edit one function, recompile.

    Returns ``(edited module, incremental CompiledProgram, cache)`` — the
    incremental program's lowered/decoded/translated artifacts were
    recomposed from per-function units, with only the edited function
    actually recompiled.
    """

    config = CompileConfig(opt_level=opt_level, engine="compiled", cache="private")
    base = synthetic_module(1, functions=FUNCTIONS)
    cache = ModuleCache()
    cache.compile_program(base, config=config)
    edited = edit_one_function(base, EDITED)
    before = cache.units.snapshot()
    program = cache.compile_program(edited, config=config)
    delta = cache.units.delta(before)
    return edited, program, delta


def _calls():
    """A call script touching the edited function and a spread of others."""

    exports = ["main", f"f{EDITED}", "f1", f"f{FUNCTIONS - 1}", f"f{EDITED + 1}"]
    return [(export, ()) for export in exports]


def _expected(export: str) -> int:
    # Function i computes seed + 1 with seed = i + 1; the edited function's
    # seed is FUNCTIONS + EDITED + 1 (see workloads.edit_one_function).
    if export == f"f{EDITED}":
        return FUNCTIONS + EDITED + 2
    index = 0 if export == "main" else int(export[1:])
    return index + 2


def test_incremental_recompile_reuses_units():
    _edited, _program, delta = _incremental_compile()
    # Every stage reused all-but-one function; only the edit recompiled.
    assert delta["lower"] == {"reused": FUNCTIONS - 1, "compiled": 1}
    assert delta["decode"]["compiled"] == 1
    assert delta["translate"]["compiled"] == 1
    assert delta["optimize"]["reused"] > delta["optimize"]["compiled"]


def test_incremental_wasm_bit_identical_to_monolithic():
    edited, program, _delta = _incremental_compile()
    config = CompileConfig(opt_level="O2", engine="compiled", cache="private")
    monolithic = lower_module(edited, config=config)  # no unit cache: cold path
    validate_module(monolithic.wasm)
    assert program.wasm == monolithic.wasm
    assert content_key("wasm", program.wasm) == content_key("wasm", monolithic.wasm)


def test_incremental_artifacts_cross_check_all_engines():
    _edited, program, _delta = _incremental_compile()
    calls = _calls()
    # The tree/flat engines run the unit-assembled decode, the compiled
    # engine the unit-assembled translation — all three must agree (results,
    # traps, memory, globals, steps) and match the seed formula.
    report = run_engine_cross_check(program.wasm, calls)
    assert report.ok, report.format_report()
    interpreter, instance = program.instantiate()
    for export, args in calls:
        assert interpreter.invoke(instance, export, list(args))[0] == _expected(export)


def test_incremental_matches_monolithic_execution():
    edited, program, _delta = _incremental_compile()
    config = CompileConfig(opt_level="O2", engine="compiled", cache="private")
    monolithic = lower_module(edited, config=config)
    mono_interp, mono_inst = monolithic.instantiate(engine="compiled")
    inc_interp, inc_inst = program.instantiate()
    for export, args in _calls():
        mono = mono_interp.invoke(mono_inst, export, list(args))
        inc = inc_interp.invoke(inc_inst, export, list(args))
        assert mono == inc
    assert mono_interp.steps == inc_interp.steps


@pytest.mark.perf
def test_one_function_edit_speedup_floor():
    result = measure_incremental_compile(functions=1000, blocks=1)
    assert result["units"]["lower"] == {"reused": 999, "compiled": 1}
    assert result["speedup"] >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"one-function-edit recompile only {result['speedup']}x faster than cold "
        f"(floor {INCREMENTAL_SPEEDUP_FLOOR}x): {result}"
    )
