"""RUNTIME — the compile-once/run-many serving layer.

Three claims, enforced as assertions:

* **Throughput** (``perf``-marked): instantiating from a cached
  :class:`repro.runtime.CompiledProgram` is at least 5x faster than the
  naive full-pipeline path, and pooled resets are faster still.
* **Correctness**: a pooled-reset instance is *bit-identical* — results,
  trap messages, final memory, globals, cumulative steps — to a freshly
  instantiated one, on both engines, for every shared workload
  (:func:`repro.opt.run_pool_reset_cross_check`).
* **Isolation**: a trapped request (including a blown per-request
  ``max_steps`` budget) leaves no trace observable by later requests.
"""

import os

import pytest

from repro.ffi import counter_program
from repro.opt import run_pool_reset_cross_check
from repro.runtime import ModuleCache, Request, Session, scenario_service

from workloads import COUNTER_TICKS, WORKLOADS, measure_runtime_throughput

# The acceptance floor; measured headroom is orders of magnitude (the naive
# path re-runs linking and type-directed lowering per instantiation).
CACHE_SPEEDUP_FLOOR = float(os.environ.get("REPRO_CACHE_SPEEDUP_FLOOR", "5.0"))


@pytest.mark.perf
def test_cached_instantiation_at_least_5x():
    runtime = measure_runtime_throughput()
    print(
        f"\n  instantiations/s: {runtime['uncached_instances_per_sec']:,} uncached -> "
        f"{runtime['cached_instances_per_sec']:,} cached ({runtime['cached_speedup']}x), "
        f"{runtime['pooled_resets_per_sec']:,} pooled resets/s, "
        f"{runtime['requests_per_sec']:,} requests/s"
    )
    assert runtime["cached_speedup"] >= CACHE_SPEEDUP_FLOOR, (
        f"cached instantiation only {runtime['cached_speedup']}x the uncached path "
        f"(floor {CACHE_SPEEDUP_FLOOR}x)"
    )
    # Recycling an instance must beat even the cached cold instantiation.
    assert runtime["pooled_resets_per_sec"] >= runtime["cached_instances_per_sec"]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_pooled_reset_bit_identical_to_fresh(workload):
    wasm, calls = WORKLOADS[workload]()
    reports = run_pool_reset_cross_check(wasm, calls)
    assert set(reports) == {"tree", "flat", "compiled"}
    for engine, report in reports.items():
        assert report.ok, f"{workload} on {engine}:\n{report.format_report()}"


def test_batch_requests_are_isolated():
    runner = scenario_service(counter_program, cache=ModuleCache())
    ticks = tuple(("client.client_tick", ()) for _ in range(COUNTER_TICKS))
    session = Session(calls=(("client.client_init", (7,)),) + ticks + (("client.client_total", ()),))
    report = runner.run([
        session,
        Request("client.client_init", (1,), 3),  # blown budget: traps
        session,                                  # must be unaffected
    ])
    assert report.outcomes[0].ok and report.outcomes[2].ok
    assert report.outcomes[0].values[-1] == report.outcomes[2].values[-1] == [7 + COUNTER_TICKS]
    assert not report.outcomes[1].ok and report.outcomes[1].trap == "step budget exhausted"
    assert report.outcomes[0].steps == report.outcomes[2].steps
