"""OPT — the Wasm optimizer: instruction-count reduction and speedup.

Measures what :mod:`repro.opt` buys on the ML and L3 pipeline workloads of
``bench_pipelines.py``: static instruction-count reduction (the acceptance
target is >= 20% on both), dynamic interpreter step-count reduction, and
wall-clock execution time of optimized vs. unoptimized modules on the Wasm
interpreter.  Differential agreement is asserted along the way, so the
benchmark doubles as an end-to-end translation-validation check.
"""

import pytest

from repro.analysis import format_optimization_report, optimization_delta
from repro.l3 import compile_l3_module
from repro.lower import lower_module
from repro.ml import compile_ml_module
from repro.opt import optimize_module, run_differential
from repro.wasm import WasmInterpreter, validate_module

from bench_pipelines import l3_workload, ml_workload

WORKLOADS = {
    "ml-pipeline": (lambda: compile_ml_module(ml_workload()), "pipeline", 21),
    "l3-churn": (lambda: compile_l3_module(l3_workload()), "churn", 9),
}


def lowered_pair(name):
    compile_fn, export, arg = WORKLOADS[name]
    plain = lower_module(compile_fn())
    result = optimize_module(plain.wasm)
    return plain.wasm, result, export, arg


def invoke(module, export, arg):
    interp = WasmInterpreter()
    instance = interp.instantiate(module)
    result = interp.invoke(instance, export, [arg])
    return result, interp.steps


# -- static instruction-count reduction --------------------------------------


def test_instruction_count_reduction_report():
    deltas = []
    for name in WORKLOADS:
        plain, result, export, arg = lowered_pair(name)
        deltas.append(optimization_delta(plain, result.module, name=name))
        assert result.reduction >= 0.20, f"{name}: {result.format_report()}"
    print()
    print(format_optimization_report(deltas))


def test_optimized_modules_validate_and_agree():
    for name in WORKLOADS:
        plain, result, export, arg = lowered_pair(name)
        validate_module(result.module)
        report = run_differential(plain, result.module, [(export, (arg,)), (export, (0,))])
        assert report.ok, report.format_report()


# -- dynamic step-count reduction --------------------------------------------


def test_interpreter_steps_reduced():
    print()
    for name in WORKLOADS:
        plain, result, export, arg = lowered_pair(name)
        baseline_result, baseline_steps = invoke(plain, export, arg)
        optimized_result, optimized_steps = invoke(result.module, export, arg)
        assert baseline_result == optimized_result
        assert optimized_steps < baseline_steps
        print(
            f"{name}: {baseline_steps} -> {optimized_steps} interpreter steps "
            f"({1 - optimized_steps / baseline_steps:.1%} fewer)"
        )


# -- wall-clock execution ------------------------------------------------------


@pytest.mark.benchmark(group="opt-ml")
def test_bench_ml_unoptimized(benchmark):
    plain, _result, export, arg = lowered_pair("ml-pipeline")
    assert benchmark(lambda: invoke(plain, export, arg)[0]) == [42]


@pytest.mark.benchmark(group="opt-ml")
def test_bench_ml_optimized(benchmark):
    _plain, result, export, arg = lowered_pair("ml-pipeline")
    assert benchmark(lambda: invoke(result.module, export, arg)[0]) == [42]


@pytest.mark.benchmark(group="opt-l3")
def test_bench_l3_unoptimized(benchmark):
    plain, _result, export, arg = lowered_pair("l3-churn")
    assert benchmark(lambda: invoke(plain, export, arg)[0]) == [10]


@pytest.mark.benchmark(group="opt-l3")
def test_bench_l3_optimized(benchmark):
    _plain, result, export, arg = lowered_pair("l3-churn")
    assert benchmark(lambda: invoke(result.module, export, arg)[0]) == [10]


@pytest.mark.benchmark(group="opt-pass-pipeline")
def test_bench_optimizer_throughput(benchmark):
    """Cost of running the pass pipeline itself over the linked ML module."""

    plain = lower_module(compile_ml_module(ml_workload()))
    result = benchmark(lambda: optimize_module(plain.wasm))
    assert result.reduction >= 0.20
