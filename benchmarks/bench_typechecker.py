"""CHECK — type-checker throughput and the strict/relaxed capability ablation.

Measures how the RichWasm type checker scales with program size (synthetic
modules with growing instruction counts) and compares the strict rule (no
capabilities anywhere on the heap) with the relaxed §5 rule (capabilities
allowed in the linear memory) — the ablation called out in DESIGN.md.

Since PR 5 it is also the measuring stick for the hash-consing layer: the
``perf``-marked head-to-head checks the interned checker against the
pre-refactor structural baseline (the same checker with interning disabled,
which reverts equality/shift/substitution/entailment to their structural
slow paths) and asserts a >= 2x throughput floor on the largest synthetic
module — mirroring how ``bench_interpreters.py`` gates the flat VM.
"""

import pytest

from repro.core.syntax import interning_disabled
from repro.core.typing import check_module

from workloads import best_of, synthetic_module

#: Required interned-over-structural-baseline throughput ratio (CI floor).
CHECKER_SPEEDUP_FLOOR = 2.0


@pytest.mark.parametrize("blocks", [1, 10, 50])
def test_scaling_corpus_is_well_typed(blocks):
    result = check_module(synthetic_module(blocks))
    assert result.instructions_checked > blocks * 8


def test_strict_and_relaxed_rules_agree_on_cap_free_code():
    module = synthetic_module(5)
    check_module(module, allow_caps_in_linear_memory=True)
    check_module(module, allow_caps_in_linear_memory=False)


def measure_checker(module, *, repeat: int = 5) -> float:
    """Best-of-``repeat`` instructions/sec for ``check_module`` on ``module``."""

    instructions = sum(
        f.instruction_count() for f in module.functions if not f.is_import
    )
    return instructions / best_of(lambda: check_module(module), repeat)


@pytest.mark.perf
@pytest.mark.parametrize("blocks", [200])
def test_interned_checker_is_at_least_2x(blocks):
    """Hash-consing sustains >= 2x the structural checker's throughput.

    The baseline builds the same module with interning disabled, so its
    types carry no canonical forms / free-variable summaries and the checker
    takes its structural equality, full shift/substitution, and memo-free
    entailment paths — the pre-refactor behaviour.
    """

    interned = measure_checker(synthetic_module(blocks))
    with interning_disabled():
        baseline = measure_checker(synthetic_module(blocks))
    speedup = interned / baseline
    print(
        f"\nblocks={blocks}: interned {interned:,.0f} instrs/s, "
        f"structural baseline {baseline:,.0f} instrs/s, speedup {speedup:.2f}x"
    )
    assert speedup >= CHECKER_SPEEDUP_FLOOR, (
        f"interned checker only {speedup:.2f}x over the structural baseline "
        f"({interned:,.0f} vs {baseline:,.0f} instrs/sec)"
    )


def test_interned_and_baseline_checker_agree():
    """Interning must not change any verdict: both modes accept the corpus
    and report identical statistics."""

    module = synthetic_module(25)
    interned = check_module(module)
    with interning_disabled():
        baseline = check_module(synthetic_module(25))
    assert interned.functions_checked == baseline.functions_checked
    assert interned.globals_checked == baseline.globals_checked
    assert interned.instructions_checked == baseline.instructions_checked


@pytest.mark.benchmark(group="typechecker")
@pytest.mark.parametrize("blocks", [10, 50, 200])
def test_bench_typechecker_scaling(benchmark, blocks):
    module = synthetic_module(blocks)
    result = benchmark(check_module, module)
    assert result.functions_checked == 1


@pytest.mark.benchmark(group="typechecker-ablation")
@pytest.mark.parametrize("relaxed", [True, False])
def test_bench_capability_rule_ablation(benchmark, relaxed):
    module = synthetic_module(50)
    result = benchmark(check_module, module, allow_caps_in_linear_memory=relaxed)
    assert result.functions_checked == 1
