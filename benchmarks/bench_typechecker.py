"""CHECK — type-checker throughput and the strict/relaxed capability ablation.

Measures how the RichWasm type checker scales with program size (synthetic
modules with growing instruction counts) and compares the strict rule (no
capabilities anywhere on the heap) with the relaxed §5 rule (capabilities
allowed in the linear memory) — the ablation called out in DESIGN.md.
"""

import pytest

from repro.core.syntax import (
    Block,
    Function,
    GetLocal,
    IntBinop,
    LIN,
    MemUnpack,
    NumBinop,
    NumConst,
    NumType,
    Return,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructMalloc,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.typing import check_module


def synthetic_module(blocks: int):
    """A function with ``blocks`` repeated allocate/read/free regions."""

    body = []
    for _ in range(blocks):
        body.extend([
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                StructGet(0),
                SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            NumConst(NumType.I32, 1),
            NumBinop(NumType.I32, IntBinop.ADD),
            SetLocal(0),
        ])
    body.append(GetLocal(0))
    body.append(Return())
    return make_module(functions=[
        Function(funtype([], [i32()]), (SizeConst(32),), tuple(body), ("main",))
    ])


@pytest.mark.parametrize("blocks", [1, 10, 50])
def test_scaling_corpus_is_well_typed(blocks):
    result = check_module(synthetic_module(blocks))
    assert result.instructions_checked > blocks * 8


def test_strict_and_relaxed_rules_agree_on_cap_free_code():
    module = synthetic_module(5)
    check_module(module, allow_caps_in_linear_memory=True)
    check_module(module, allow_caps_in_linear_memory=False)


@pytest.mark.benchmark(group="typechecker")
@pytest.mark.parametrize("blocks", [10, 50, 200])
def test_bench_typechecker_scaling(benchmark, blocks):
    module = synthetic_module(blocks)
    result = benchmark(check_module, module)
    assert result.functions_checked == 1


@pytest.mark.benchmark(group="typechecker-ablation")
@pytest.mark.parametrize("relaxed", [True, False])
def test_bench_capability_rule_ablation(benchmark, relaxed):
    module = synthetic_module(50)
    result = benchmark(check_module, module, allow_caps_in_linear_memory=relaxed)
    assert result.functions_checked == 1
