"""FIG1 — Fig. 1: naive unsafe interop is rejected at the boundary.

Regenerates the paper's first example: the ML module and the
manually-managed client compile separately, but resolving the ``ml.stash``
import fails because the boundary types disagree.  The benchmark measures the
full detect-the-violation path (compile both sources + cross-module check).
"""

import pytest

from repro.core.typing.errors import LinkError
from repro.ffi import check_link, fig1_unsafe_program


def detect_fig1_violation():
    scenario = fig1_unsafe_program()
    try:
        check_link(scenario.modules())
    except LinkError as error:
        return str(error)
    raise AssertionError("Fig. 1 program must be rejected")


def test_fig1_is_rejected():
    message = detect_fig1_violation()
    assert "stash" in message


def test_fig1_modules_are_individually_well_typed():
    from repro.core.typing import check_module

    scenario = fig1_unsafe_program()
    check_module(scenario.ml)
    check_module(scenario.client)


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_detection(benchmark):
    message = benchmark(detect_fig1_violation)
    assert "stash" in message
