"""TAB-COQ — §4.1: size of the formalization / implementation.

The paper reports 14k lines of Coq specifications and 52k lines of proofs.
This harness regenerates the analogous table for the reproduction
(specification-like vs systems vs evidence code) and benchmarks the metric
collection itself.
"""

import pytest

from repro.analysis import count_typing_rules, format_report, gather_metrics


def test_report_shape():
    categories = gather_metrics()
    assert len(categories) == 3
    spec = categories[0]
    assert spec.total_lines > 3000, "the specification-like core should be substantial"


def test_rule_counts_match_paper_scale():
    rules = count_typing_rules()
    # The paper's Fig. 2 lists ~50 instruction forms; every one has a typing
    # rule and a reduction rule here.
    assert rules["instruction typing rules"] >= 45
    assert rules["reduction rules"] >= 45


def test_print_table(capsys):
    print(format_report(gather_metrics()))
    captured = capsys.readouterr()
    assert "TOTAL" in captured.out


@pytest.mark.benchmark(group="formalization-stats")
def test_bench_gather_metrics(benchmark):
    categories = benchmark(gather_metrics)
    assert categories
