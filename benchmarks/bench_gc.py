"""GC — §3: the garbage-collection rule for the unrestricted memory.

Builds heaps with varying garbage ratios and measures collection; also checks
the finalization behaviour (linear cells owned by dead GC cells are freed).
"""

import pytest

from repro.core.semantics import Store, run_gc
from repro.core.syntax import MemKind, NumType, NumV, RefV, StructHV


def build_heap(live: int, garbage: int, linear_owned: int = 0):
    """A store with ``live`` reachable cells, ``garbage`` unreachable ones."""

    store = Store()
    roots = []
    for i in range(live):
        loc = store.allocate(MemKind.UNR, StructHV((NumV(NumType.I32, i),)), 32)
        roots.append(RefV(loc))
    for i in range(garbage):
        owned = []
        if i < linear_owned:
            lin = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, i),)), 32)
            owned.append(RefV(lin))
        store.allocate(MemKind.UNR, StructHV(tuple(owned) or (NumV(NumType.I32, i),)), 32)
    return store, roots


@pytest.mark.parametrize("live,garbage", [(10, 0), (10, 100), (100, 100), (0, 200)])
def test_collection_is_precise(live, garbage):
    store, roots = build_heap(live, garbage)
    stats = run_gc(store, roots)
    assert stats.collected_unrestricted == garbage
    assert len(store.unrestricted) == live


def test_owned_linear_memory_is_finalized():
    store, roots = build_heap(live=5, garbage=20, linear_owned=7)
    stats = run_gc(store, roots)
    assert stats.finalized_linear == 7
    assert len(store.linear) == 0


def test_repeated_collection_is_idempotent():
    store, roots = build_heap(50, 50)
    run_gc(store, roots)
    second = run_gc(store, roots)
    assert second.collected_unrestricted == 0


@pytest.mark.benchmark(group="gc")
@pytest.mark.parametrize("garbage_ratio", [0.1, 0.5, 0.9])
def test_bench_collection(benchmark, garbage_ratio):
    total = 2000
    garbage = int(total * garbage_ratio)

    def cycle():
        store, roots = build_heap(total - garbage, garbage)
        return run_gc(store, roots)

    stats = benchmark(cycle)
    assert stats.collected_unrestricted == garbage
