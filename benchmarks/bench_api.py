"""API facade — one config in, a verified program out.

Three claims, enforced as assertions:

* **Levels order**: ``O1`` never produces more instructions than ``O0``,
  ``O2`` never more than ``O1``, and ``O2`` removes at least 20% on the
  cross-language counter program (matching ``bench_opt``).
* **Correctness**: every optimization level is bit-identical to ``O0``
  under :func:`repro.opt.run_differential`, and the compiled module agrees
  across both execution engines (:func:`repro.opt.run_engine_cross_check`).
* **Caching**: recompiling under the same config is a program-level cache
  hit (shared payload, zero extra lower/decode work); different levels get
  distinct cache entries.
"""

import pytest

from repro import api
from repro.api import CompileConfig
from repro.ffi import counter_program
from repro.opt import pipeline_names, run_differential, run_engine_cross_check
from repro.runtime import ModuleCache

from workloads import COUNTER_TICKS

CALLS = (
    [("client.client_init", (0,))]
    + [("client.client_tick", ())] * COUNTER_TICKS
    + [("client.client_total", ())]
)


def compile_at(level, cache):
    return api.compile(counter_program, CompileConfig(opt_level=level), cache=cache)


def test_levels_shrink_and_agree():
    cache = ModuleCache()
    compiled = {level: compile_at(level, cache) for level in pipeline_names()}
    sizes = {level: program.wasm.instruction_count() for level, program in compiled.items()}
    print(f"\n  instructions by level: {sizes}")
    assert sizes["O1"] <= sizes["O0"]
    assert sizes["O2"] <= sizes["O1"]
    assert 1 - sizes["O2"] / sizes["O0"] >= 0.20, sizes

    baseline = compiled["O0"].wasm
    for level in ("O1", "O2"):
        for engine in ("tree", "flat"):
            report = run_differential(baseline, compiled[level].wasm, CALLS, engine=engine)
            assert report.ok, f"{level}/{engine}:\n{report.format_report()}"
        cross = run_engine_cross_check(compiled[level].wasm, CALLS)
        assert cross.ok, f"{level}:\n{cross.format_report()}"


def test_recompile_is_a_program_level_hit():
    cache = ModuleCache()
    first = compile_at("O2", cache)
    lower_misses = cache.stats["lower"].misses
    second = compile_at("O2", cache)
    assert second is first
    assert second.diagnostics.cache["program"] == "hit"
    assert cache.stats["lower"].misses == lower_misses
    assert compile_at("O1", cache) is not first  # distinct entry per level


def test_service_round_trip_per_level():
    cache = ModuleCache()
    totals = {}
    for level in pipeline_names():
        service = api.serve(compile_at(level, cache))
        outcome = service.session(
            [("client_init", (3,))] + [("client_tick", ())] * 4 + [("client_total", ())]
        )
        assert outcome.ok, outcome.trap
        totals[level] = outcome.values[-1]
    assert len(set(map(tuple, totals.values()))) == 1, totals
    assert totals["O2"] == [7]


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
