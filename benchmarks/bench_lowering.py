"""LOWER — §6: RichWasm → Wasm compilation characteristics.

For a corpus of modules of increasing size this harness reports the series
the paper's compilation section implies: instruction-count expansion, the
share of type-level instructions that are erased (capabilities have zero
runtime cost), and the number of boxing coercions, and benchmarks lowering
throughput.
"""

import pytest

from repro.core.typing import check_module
from repro.ffi import counter_program
from repro.ffi.link import link_modules
from repro.lower import lower_module
from repro.ml import (
    App,
    BinOp,
    IntLit,
    Lam,
    Let,
    MLFunction,
    TInt,
    Var,
    compile_ml_module,
    ml_module,
)


def synthetic_ml_module(functions: int):
    """An ML module with ``functions`` closure-using functions."""

    defs = []
    for i in range(functions):
        defs.append(
            MLFunction(
                f"f{i}", "x", TInt(), TInt(),
                Let("g", Lam("y", TInt(), BinOp("+", Var("y"), IntLit(i))),
                    App(Var("g"), App(Var("g"), Var("x")))),
            )
        )
    return ml_module("synthetic", functions=defs)


CORPUS = {
    "counter (linked ML+L3)": lambda: link_modules(counter_program().modules()),
    "ml closures x4": lambda: compile_ml_module(synthetic_ml_module(4)),
    "ml closures x16": lambda: compile_ml_module(synthetic_ml_module(16)),
}


@pytest.mark.parametrize("name", list(CORPUS))
def test_lowering_shape(name):
    module = CORPUS[name]()
    check_module(module)
    lowered = lower_module(module)
    stats = lowered.stats
    # Erasure: type-level instructions never survive to Wasm.
    assert stats.erased_instructions >= 0
    # Expansion from locals splitting / allocator calls is bounded but real.
    assert stats.wasm_instructions > stats.richwasm_instructions - stats.erased_instructions
    expansion = stats.wasm_instructions / max(stats.richwasm_instructions, 1)
    assert expansion < 12, f"unexpectedly large expansion for {name}: {expansion:.1f}x"


def test_erasure_share_reported():
    module = link_modules(counter_program().modules())
    lowered = lower_module(module)
    share = lowered.stats.erased_instructions / lowered.stats.richwasm_instructions
    assert 0.0 <= share < 0.6


@pytest.mark.benchmark(group="lowering")
@pytest.mark.parametrize("name", list(CORPUS))
def test_bench_lowering_throughput(benchmark, name):
    module = CORPUS[name]()
    lowered = benchmark(lower_module, module)
    assert lowered.stats.wasm_instructions > 0
