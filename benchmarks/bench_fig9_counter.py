"""FIG9 — Fig. 9: the manually-managed counter behind a GC'd interface.

Builds the counter program (L3 library + ML client), runs it on both the
RichWasm interpreter and the lowered single-memory Wasm module, and checks
the two agree.  Benchmarks measure ticks-per-run on both backends.
"""

import pytest

from repro.core.syntax import NumType, NumV, UnitV
from repro.ffi import Program, counter_program

TICKS = 25


def run_interpreter(ticks: int = TICKS) -> int:
    program = Program(counter_program().modules())
    instance = program.instantiate()
    instance.invoke("client", "client_init", [NumV(NumType.I32, 0)])
    for _ in range(ticks):
        instance.invoke("client", "client_tick", [UnitV()])
    return instance.invoke("client", "client_total", [UnitV()])[0].value


def run_wasm(ticks: int = TICKS) -> int:
    program = Program(counter_program().modules())
    wasm = program.instantiate_wasm()
    wasm.invoke("client", "client_init", [0])
    for _ in range(ticks):
        wasm.invoke("client", "client_tick", [0])
    return wasm.invoke("client", "client_total", [0])[0]


def test_backends_agree():
    assert run_interpreter(7) == run_wasm(7) == 7


def test_shared_configuration_increment():
    program = Program(counter_program(increment=3).modules())
    instance = program.instantiate()
    instance.invoke("client", "client_init", [NumV(NumType.I32, 0)])
    for _ in range(4):
        instance.invoke("client", "client_tick", [UnitV()])
    assert instance.invoke("client", "client_total", [UnitV()])[0].value == 12


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_interpreter(benchmark):
    assert benchmark(run_interpreter) == TICKS


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_wasm(benchmark):
    assert benchmark(run_wasm) == TICKS
