"""PIPE — §5: the ML and L3 compiler pipelines.

Measures end-to-end source → RichWasm → type check → execute times for
representative ML and L3 programs, and checks the pass-rate properties the
paper's compilers provide (every compiled module type checks).
"""

import pytest

from repro.core.semantics import Interpreter
from repro.core.syntax import NumType, NumV
from repro.core.typing import check_module
from repro.l3 import (
    L3Function,
    LBinOp,
    LFree,
    LInt,
    LIntLit,
    LLet,
    LLetPair,
    LNew,
    LSwap,
    LVar,
    compile_l3_module,
    l3_module,
)
from repro.ml import (
    App,
    BinOp,
    Case,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    MLFunction,
    TInt,
    TSum,
    TUnit,
    Unit,
    Var,
    compile_ml_module,
    ml_module,
)


def ml_workload():
    sum_ty = TSum(TUnit(), TInt())
    return ml_module("work", functions=[
        MLFunction("pipeline", "x", TInt(), TInt(),
                   Let("double", Lam("y", TInt(), BinOp("*", Var("y"), IntLit(2))),
                       Case(If(BinOp("<", Var("x"), IntLit(0)), Inl(Unit(), sum_ty), Inr(Var("x"), sum_ty)),
                            "n", IntLit(0),
                            "p", App(Var("double"), Var("p"))))),
    ])


def l3_workload():
    return l3_module("work", functions=[
        L3Function("churn", "x", LInt(), LInt(),
                   LLet("o", LNew(LVar("x")),
                        LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                 LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
    ])


def ml_pipeline():
    module = compile_ml_module(ml_workload())
    check_module(module)
    interp = Interpreter()
    idx = interp.instantiate(module)
    return interp.invoke_export(idx, "pipeline", [NumV(NumType.I32, 21)]).values[0].value


def l3_pipeline():
    module = compile_l3_module(l3_workload())
    check_module(module)
    interp = Interpreter()
    idx = interp.instantiate(module)
    return interp.invoke_export(idx, "churn", [NumV(NumType.I32, 9)]).values[0].value


def test_ml_pipeline_result():
    assert ml_pipeline() == 42


def test_l3_pipeline_result():
    assert l3_pipeline() == 10


def test_every_compiled_module_type_checks():
    # Type-preserving compilation: no compiled output is rejected.
    check_module(compile_ml_module(ml_workload()))
    check_module(compile_l3_module(l3_workload()))


@pytest.mark.benchmark(group="pipelines")
def test_bench_ml_pipeline(benchmark):
    assert benchmark(ml_pipeline) == 42


@pytest.mark.benchmark(group="pipelines")
def test_bench_l3_pipeline(benchmark):
    assert benchmark(l3_pipeline) == 10
