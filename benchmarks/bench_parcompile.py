"""COMPILE — parallel per-function compilation (:mod:`repro.parcompile`).

The PR 10 tentpole: a cold compile fans the per-function compile units
(lower → optimize → validate → decode → translate) across a fork-based
worker pool that pre-seeds the function-unit cache; the unchanged serial
pipeline then recomposes the module from the seeds.  Correctness is gated
harder than speed: the parallel-compiled ``WasmModule`` must be dataclass-
and content-key-identical to a serial cold compile, and the three execution
engines must agree on the parallel artifacts
(:func:`repro.opt.run_engine_cross_check`).

The perf gate compiles a 1000-function synthetic module serially and with 4
workers and requires at least ``REPRO_PARCOMPILE_SPEEDUP_FLOOR`` (default
2x).  It auto-skips when the machine has fewer CPUs than workers — a
1-core runner cannot demonstrate parallel speedup (same contract as the
cluster throughput gate).
"""

import os

import pytest

from repro.api import CompileConfig
from repro.opt import run_engine_cross_check
from repro.runtime import ModuleCache
from repro.runtime.cache import content_key

from workloads import measure_parallel_compile, synthetic_module

# Measured headroom is ~2.6x at 1000 functions / 4 workers (translate's
# CPython compile() dominates and parallelizes cleanly); overridable so a
# contended runner can relax the gate without a code change.
PARCOMPILE_SPEEDUP_FLOOR = float(os.environ.get("REPRO_PARCOMPILE_SPEEDUP_FLOOR", "2.0"))

WORKERS = 4
FUNCTIONS = 24


def _config(workers: int) -> CompileConfig:
    return CompileConfig(
        opt_level="O1", engine="compiled", cache="private", compile_workers=workers
    ).validate()


def _compile(module, workers: int):
    cache = ModuleCache()
    program = cache.compile_program(module, config=_config(workers))
    return cache, program


def test_parallel_compile_bit_identical_to_serial():
    module = synthetic_module(1, functions=FUNCTIONS)
    _serial_cache, serial = _compile(module, 1)
    par_cache, parallel = _compile(module, WORKERS)
    assert serial.wasm == parallel.wasm
    assert content_key("wasm", serial.wasm) == content_key("wasm", parallel.wasm)
    assert serial.key == parallel.key
    # Not vacuously true via a silent serial fallback: the pool ran.
    report = par_cache.last_parcompile
    assert report is not None and report.fallbacks == []
    assert report.units_seeded["lower"] == FUNCTIONS


def test_parallel_artifacts_cross_check_all_engines():
    module = synthetic_module(1, functions=FUNCTIONS)
    _cache, program = _compile(module, WORKERS)
    calls = [("main", ()), ("f1", ()), (f"f{FUNCTIONS - 1}", ())]
    report = run_engine_cross_check(program.wasm, calls)
    assert report.ok, report.format_report()
    interpreter, instance = program.instantiate()
    # Function i computes seed + 1 with seed = i + 1 (workloads contract).
    assert interpreter.invoke(instance, "main", [])[0] == 2
    assert interpreter.invoke(instance, f"f{FUNCTIONS - 1}", [])[0] == FUNCTIONS + 1


@pytest.mark.perf
def test_parallel_cold_compile_speedup_floor():
    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"parallel speedup needs >= {WORKERS} CPUs (found {os.cpu_count()})"
        )
    result = measure_parallel_compile(functions=1000, blocks=1, workers=WORKERS)
    assert result["identical"], f"parallel compile diverged from serial: {result}"
    assert result["fallbacks"] == [] and result["worker_deaths"] == 0, result
    assert result["speedup"] >= PARCOMPILE_SPEEDUP_FLOOR, (
        f"parallel cold compile only {result['speedup']}x faster than serial "
        f"(floor {PARCOMPILE_SPEEDUP_FLOOR}x): {result}"
    )
