"""The observability overhead contract (``repro.obs``).

Observability is only free if nobody pays for it when it is off — these
benchmarks pin that down as CI gates on the ``sum_loop`` workload:

* **disabled**: running under the default :data:`~repro.obs.NOOP_TRACER`
  (spans opened and discarded per call script, no profiler attached) must
  sustain >= 98% of the uninstrumented baseline's steps/sec;
* **tracing**: a real :class:`~repro.obs.Tracer` buffering every span must
  sustain >= 90%;
* **profiling**: a :class:`~repro.obs.StepProfiler` sampling every 1024
  steps must sustain >= 90%.

The schema tests at the bottom are cheap and run in the non-perf lane; the
overhead gates are ``perf``-marked for the dedicated CI perf job.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import NOOP_TRACER, StepProfiler, Tracer, get_tracer, set_tracer
from repro.obs.export import span_record, validate_record
from repro.wasm import WasmInterpreter

from workloads import WORKLOADS, run_calls

DISABLED_FLOOR = 0.98
TRACED_FLOOR = 0.90
PROFILED_FLOOR = 0.90

MIN_TIME = 0.4
MAX_ROUNDS = 400


def _script_runner(wasm, calls, *, traced: bool = False, profiler: StepProfiler | None = None):
    """Build a zero-argument call-script replayer and count its steps.

    ``traced`` opens a span around every call script through the *global*
    tracer — exactly how the serving tier is instrumented — so the disabled
    measurement exercises the no-op path and the enabled one the real path.
    """

    interpreter = WasmInterpreter(engine="flat")
    instance = interpreter.instantiate(wasm)
    if profiler is not None:
        profiler.install(interpreter)
    run_calls(interpreter, instance, calls)  # warm-up
    before = interpreter.steps
    run_calls(interpreter, instance, calls)
    steps = interpreter.steps - before

    if traced:
        def run():
            with get_tracer().span("bench.script", workload="sum_loop"):
                run_calls(interpreter, instance, calls)
    else:
        def run():
            run_calls(interpreter, instance, calls)
    return run, steps


def _interleaved_steps_per_sec(baseline, candidate):
    """Best-of steps/sec for two ``(runner, steps)`` pairs, rounds alternated.

    Alternating round-robin (instead of timing one runner to completion and
    then the other) cancels clock-speed drift between the two measurement
    windows — without it, turbo/thermal variance alone shows up as several
    percent and drowns the <=2% contract this file exists to check.
    """

    runners = (baseline, candidate)
    best = [float("inf"), float("inf")]
    elapsed_total = 0.0
    rounds = 0
    while elapsed_total < MIN_TIME * 2 and rounds < MAX_ROUNDS:
        for index, (run, _steps) in enumerate(runners):
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            best[index] = min(best[index], elapsed)
            elapsed_total += elapsed
        rounds += 1
    return baseline[1] / best[0], candidate[1] / best[1]


@pytest.mark.perf
def test_noop_tracer_within_2pct_of_baseline():
    """Instrumented-but-disabled must cost <= 2% on the hot loop."""

    wasm, calls = WORKLOADS["sum_loop"]()
    set_tracer(NOOP_TRACER)
    baseline, disabled = _interleaved_steps_per_sec(
        _script_runner(wasm, calls), _script_runner(wasm, calls, traced=True)
    )
    ratio = disabled / baseline
    print(f"\nsum_loop: baseline {baseline:,.0f} steps/s, obs-disabled {disabled:,.0f} "
          f"({ratio:.3f}x)")
    assert ratio >= DISABLED_FLOOR, (
        f"obs-disabled path at {ratio:.3f}x of baseline (floor {DISABLED_FLOOR})"
    )


@pytest.mark.perf
def test_tracing_enabled_within_10pct_of_baseline():
    """A live buffering tracer must cost <= 10% on the hot loop."""

    wasm, calls = WORKLOADS["sum_loop"]()
    tracer = Tracer()
    set_tracer(tracer)
    try:
        # The baseline runner never opens a span, so sharing the live global
        # tracer keeps both sides of the interleaving identical otherwise.
        baseline, traced = _interleaved_steps_per_sec(
            _script_runner(wasm, calls), _script_runner(wasm, calls, traced=True)
        )
    finally:
        set_tracer(NOOP_TRACER)
    ratio = traced / baseline
    spans = tracer.drain()
    print(f"\nsum_loop: baseline {baseline:,.0f} steps/s, traced {traced:,.0f} "
          f"({ratio:.3f}x, {len(spans)} spans)")
    assert spans, "tracing produced no spans"
    assert ratio >= TRACED_FLOOR, (
        f"tracing-enabled path at {ratio:.3f}x of baseline (floor {TRACED_FLOOR})"
    )


@pytest.mark.perf
def test_profiler_enabled_within_10pct_of_baseline():
    """A sampling profiler (interval 1024) must cost <= 10% on the hot loop."""

    wasm, calls = WORKLOADS["sum_loop"]()
    set_tracer(NOOP_TRACER)
    profiler = StepProfiler(interval=1024)
    baseline, profiled = _interleaved_steps_per_sec(
        _script_runner(wasm, calls), _script_runner(wasm, calls, profiler=profiler)
    )
    ratio = profiled / baseline
    print(f"\nsum_loop: baseline {baseline:,.0f} steps/s, profiled {profiled:,.0f} "
          f"({ratio:.3f}x, {profiler.total_samples} samples)")
    assert profiler.total_samples > 0, "profiler took no samples"
    assert ratio >= PROFILED_FLOOR, (
        f"profiler-enabled path at {ratio:.3f}x of baseline (floor {PROFILED_FLOOR})"
    )


# -- non-perf: the emitted telemetry is schema-valid -------------------------


def test_traced_run_emits_schema_valid_spans():
    wasm, calls = WORKLOADS["sum_loop"]()
    tracer = Tracer()
    set_tracer(tracer)
    try:
        interpreter = WasmInterpreter(engine="flat")
        instance = interpreter.instantiate(wasm)
        with get_tracer().span("bench.script", workload="sum_loop"):
            run_calls(interpreter, instance, calls)
    finally:
        set_tracer(NOOP_TRACER)
    spans = tracer.drain()
    assert len(spans) == 1
    record = validate_record(span_record(spans[0]))
    assert record["name"] == "bench.script"
    assert record["attrs"]["workload"] == "sum_loop"


def test_profiler_record_dict_is_schema_valid():
    from repro.obs.export import _base

    wasm, calls = WORKLOADS["sum_loop"]()
    interpreter = WasmInterpreter(engine="flat")
    instance = interpreter.instantiate(wasm)
    profiler = StepProfiler(interval=64).install(interpreter)
    run_calls(interpreter, instance, calls)
    profiler.uninstall(interpreter)
    record = _base("profile")
    record.update(profiler.record_dict())
    validate_record(record)
    assert record["samples"] > 0
