"""SAFETY — §4.1: progress and preservation, empirically.

Runs the linked cross-language programs under the safety harness, which
re-checks the store invariants after every reduction step, and reports zero
stuck states / zero preservation violations.  The benchmark measures the cost
of fully-instrumented execution (every step re-validated).
"""

import pytest

from repro.analysis import SafetyHarness
from repro.core.syntax import NumType, NumV, UnitV
from repro.ffi import counter_program, fig3_programs
from repro.ffi.link import link_modules


def run_counter_under_harness(ticks: int = 10):
    linked = link_modules(counter_program().modules())
    harness = SafetyHarness()
    invocations = [("client.client_init", [NumV(NumType.I32, 0)])]
    invocations += [("client.client_tick", [UnitV()]) for _ in range(ticks)]
    invocations += [("client.client_total", [UnitV()])]
    return harness.run_module(linked, invocations)


def run_fig3_under_harness():
    _, safe = fig3_programs()
    linked = link_modules(safe.modules())
    harness = SafetyHarness()
    return harness.run_module(
        linked,
        [
            ("client.store", [NumV(NumType.I32, 5)]),
            ("client.take", [UnitV()]),
            ("client.take", [UnitV()]),  # traps: progress, not stuckness
        ],
    )


def test_counter_preserves_invariants():
    report = run_counter_under_harness(5)
    assert report.ok
    assert report.steps > 100
    assert report.store_checks == report.steps


def test_fig3_traps_are_progress_not_stuckness():
    report = run_fig3_under_harness()
    assert report.ok
    assert report.traps == 1
    assert report.stuck == 0


@pytest.mark.benchmark(group="type-safety")
def test_bench_instrumented_execution(benchmark):
    report = benchmark(run_counter_under_harness, 5)
    assert report.ok
