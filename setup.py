"""Setuptools entry point (kept alongside pyproject.toml for offline editable installs)."""

from setuptools import setup

setup()
