"""Tests for the L3 frontend: linear type checker, compiler, behaviour."""

import pytest

from repro.core.semantics import Interpreter
from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module as rw_check_module
from repro.l3 import (
    L3Function,
    L3TypeError,
    LBang,
    LBangI,
    LBinOp,
    LFree,
    LInt,
    LIntLit,
    LJoin,
    LLet,
    LLetBang,
    LLetPair,
    LMLRef,
    LNew,
    LOwned,
    LPair,
    LSplit,
    LSwap,
    LTensor,
    LUnit,
    LUnitV,
    LVar,
    check_l3_module,
    compile_l3_module,
    l3_module,
)
from repro.lower import lower_module
from repro.wasm import WasmInterpreter, validate_module


def run_l3(module, calls):
    richwasm = compile_l3_module(module)
    rw_check_module(richwasm)
    interp = Interpreter()
    idx = interp.instantiate(richwasm)
    results = []
    for export, args in calls:
        results.append([v.value for v in interp.invoke_export(idx, export, args).values])
    return results, interp, richwasm


class TestLinearTypechecker:
    def test_linear_variable_used_once(self):
        check_l3_module(l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(), LFree(LNew(LVar("x")))),
        ]))

    def test_duplicating_linear_variable_rejected(self):
        with pytest.raises(L3TypeError):
            check_l3_module(l3_module("m", functions=[
                L3Function("f", "x", LInt(), LInt(),
                           LLet("o", LNew(LVar("x")),
                                LBinOp("+", LFree(LVar("o")), LFree(LVar("o"))))),
            ]))

    def test_dropping_linear_variable_rejected(self):
        with pytest.raises(L3TypeError):
            check_l3_module(l3_module("m", functions=[
                L3Function("f", "x", LInt(), LInt(),
                           LLet("o", LNew(LIntLit(1)), LVar("x"))),
            ]))

    def test_unrestricted_variables_may_be_duplicated(self):
        check_l3_module(l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(), LBinOp("+", LVar("x"), LVar("x"))),
        ]))

    def test_bang_of_linear_value_rejected(self):
        with pytest.raises(L3TypeError):
            check_l3_module(l3_module("m", functions=[
                L3Function("f", "x", LInt(), LOwned(LInt()), LBangI(LNew(LVar("x")))),
            ]))

    def test_free_of_non_owned_rejected(self):
        with pytest.raises(L3TypeError):
            check_l3_module(l3_module("m", functions=[
                L3Function("f", "x", LInt(), LInt(), LFree(LVar("x"))),
            ]))

    def test_swap_produces_strong_update_type(self):
        signatures = check_l3_module(l3_module("m", functions=[
            L3Function("f", "x", LInt(), LTensor(LInt(), LOwned(LBang(LInt()))),
                       LSwap(LNew(LVar("x")), LBangI(LIntLit(1)))),
        ]))
        assert "f" in signatures

    def test_call_argument_mismatch(self):
        from repro.l3 import LCall

        with pytest.raises(L3TypeError):
            check_l3_module(l3_module("m", functions=[
                L3Function("g", "x", LInt(), LInt(), LVar("x")),
                L3Function("f", "u", LUnit(), LInt(), LCall("g", LUnitV())),
            ]))


class TestCompilationAndExecution:
    def test_new_free_roundtrip(self):
        results, interp, _ = run_l3(
            l3_module("m", functions=[
                L3Function("f", "x", LInt(), LInt(), LFree(LNew(LVar("x")))),
            ]),
            [("f", [NumV(NumType.I32, 42)])],
        )
        assert results == [[42]]
        assert interp.store.stats()["linear_live"] == 0

    def test_strong_update_via_swap(self):
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(),
                       LLet("o", LNew(LVar("x")),
                            LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(100)),
                                     LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
        ])
        results, _, _ = run_l3(module, [("f", [NumV(NumType.I32, 7)])])
        assert results == [[107]]

    def test_strong_update_changes_type_same_size(self):
        # Store an int, swap in a !int: same slot size, different type.
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(),
                       LLet("o", LNew(LVar("x")),
                            LLetPair("old", "o2", LSwap(LVar("o"), LBangI(LIntLit(99))),
                                     LLet("ignored", LFree(LVar("o2")), LVar("old"))))),
        ])
        results, _, _ = run_l3(module, [("f", [NumV(NumType.I32, 13)])])
        assert results == [[13]]

    def test_strong_update_with_different_size_rejected(self):
        # Swapping a unit (0 bits) into an int-sized cell changes the slot
        # size; L3 capabilities track sizes (§5), so this is a type error.
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(),
                       LLet("o", LNew(LVar("x")),
                            LLetPair("old", "o2", LSwap(LVar("o"), LUnitV()),
                                     LLet("ignored", LFree(LVar("o2")), LVar("old"))))),
        ])
        with pytest.raises(L3TypeError):
            check_l3_module(module)

    def test_join_split_roundtrip(self):
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(), LFree(LSplit(LJoin(LNew(LVar("x")))))),
        ])
        results, _, _ = run_l3(module, [("f", [NumV(NumType.I32, 9)])])
        assert results == [[9]]

    def test_nested_cells(self):
        # A cell holding another (owned) cell: free both, return the content.
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(),
                       LFree(LFree(LNew(LNew(LVar("x")))))),
        ])
        results, interp, _ = run_l3(module, [("f", [NumV(NumType.I32, 5)])])
        assert results == [[5]]
        assert interp.store.stats()["linear_live"] == 0

    def test_compiled_modules_lower_to_wasm(self):
        module = l3_module("m", functions=[
            L3Function("roundtrip", "x", LInt(), LInt(), LFree(LNew(LVar("x")))),
            L3Function("arith", "x", LInt(), LInt(),
                       LLetBang("y", LBangI(LVar("x")), LBinOp("*", LVar("y"), LVar("y")))),
        ])
        richwasm = compile_l3_module(module)
        rw_check_module(richwasm)
        lowered = lower_module(richwasm)
        validate_module(lowered.wasm)
        interp = WasmInterpreter()
        inst = interp.instantiate(lowered.wasm)
        assert interp.invoke(inst, "roundtrip", [11]) == [11]
        assert interp.invoke(inst, "arith", [6]) == [36]

    def test_capabilities_are_erased(self):
        # The Owned representation carries capabilities/pointers at the type
        # level; the lowered code must not grow because of them.
        module = l3_module("m", functions=[
            L3Function("f", "x", LInt(), LInt(), LFree(LNew(LVar("x")))),
        ])
        richwasm = compile_l3_module(module)
        rw_check_module(richwasm)
        lowered = lower_module(richwasm)
        assert lowered.stats.erased_instructions >= 3
