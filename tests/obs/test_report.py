"""The report CLI: single-file summaries and multi-file (cluster) merges."""

import pytest

from repro.obs import JsonlSink, MetricsRegistry, Tracer, use_tracer
from repro.obs.report import main, summarize
from repro.obs.export import read_records


def _worker_file(path, *, requests: int, trace_name: str) -> None:
    """One worker's JSONL export: a span plus a metrics snapshot."""

    registry = MetricsRegistry("t")
    registry.counter("runtime.requests").inc(requests, outcome="ok")
    registry.gauge("pool.size").set(2)
    sink = JsonlSink(path)
    with use_tracer(Tracer(sink=sink)) as tracer:
        with tracer.span(trace_name):
            pass
    sink.emit_metrics(registry)
    sink.close()


class TestSummarizeMultiFile:
    def test_metric_records_sum_across_files(self, tmp_path):
        a, b = tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"
        _worker_file(a, requests=3, trace_name="cluster.run")
        _worker_file(b, requests=5, trace_name="cluster.run")
        records = list(read_records(a)) + list(read_records(b))
        summary = summarize(records)
        assert summary.counters["runtime.requests"]["value"] == 8
        assert summary.gauges["pool.size"]["value"] == 4  # per-worker levels add
        assert summary.spans["cluster.run"].count == 2
        assert len(summary.traces) == 2

    def test_single_file_values_verbatim(self, tmp_path):
        path = tmp_path / "one.jsonl"
        _worker_file(path, requests=7, trace_name="service.run")
        summary = summarize(read_records(path))
        assert summary.counters["runtime.requests"]["value"] == 7


class TestCli:
    def test_multi_file_invocation(self, tmp_path, capsys):
        a, b = tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"
        _worker_file(a, requests=2, trace_name="cluster.run")
        _worker_file(b, requests=4, trace_name="cluster.run")
        assert main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "aggregated 2 file(s)" in out
        assert "runtime.requests" in out

    def test_validate_multiple_files(self, tmp_path, capsys):
        a, b = tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"
        _worker_file(a, requests=1, trace_name="x")
        _worker_file(b, requests=1, trace_name="y")
        assert main(["--validate", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert str(a) in out and str(b) in out

    def test_bad_file_names_the_file(self, tmp_path, capsys):
        good, bad = tmp_path / "good.jsonl", tmp_path / "bad.jsonl"
        _worker_file(good, requests=1, trace_name="x")
        bad.write_text('{"not": "a schema record"}\n')
        assert main([str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "bad.jsonl" in err
