"""Step-profiler attribution: engine parity, trap priority, reporting."""

import pytest

from repro.obs import UNNAMED_FUNCTION, StepProfiler
from repro.wasm import (
    Binop,
    Const,
    LocalGet,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmInterpreter,
    WasmModule,
    WCall,
    validate_module,
)
from repro.wasm.interpreter import WasmTrap

I32 = ValType.I32


def two_function_module():
    """``outer`` calls ``helper`` repeatedly, so samples split across both."""

    helper = WasmFunction(WasmFuncType((I32,), (I32,)), (), (
        LocalGet(0), Const(I32, 1), Binop(I32, "add"),
        LocalGet(0), Binop(I32, "mul"),
    ), name="helper", exports=("helper",))
    body = [Const(I32, 0)]
    for _ in range(40):
        body += [Const(I32, 7), WCall(0), Binop(I32, "add")]
    outer = WasmFunction(WasmFuncType((), (I32,)), (), tuple(body),
                         name="outer", exports=("outer",))
    module = WasmModule(functions=(helper, outer))
    validate_module(module)
    return module


def run_profiled(engine: str, *, interval=16, max_steps=None):
    module = two_function_module()
    interpreter = WasmInterpreter(engine=engine, max_steps=max_steps)
    instance = interpreter.instantiate(module)
    profiler = StepProfiler(interval=interval, keep_trace=True)
    profiler.install(interpreter)
    trap = None
    try:
        interpreter.invoke(instance, "outer", [])
    except WasmTrap as exc:
        trap = str(exc)
    profiler.uninstall(interpreter)
    return interpreter, profiler, trap


class TestParity:
    def test_all_engines_sample_identically(self):
        # Interval 7 is coprime with the call loop's period, so samples
        # sweep through every phase and land in both functions.
        tree = run_profiled("tree", interval=7)
        flat = run_profiled("flat", interval=7)
        compiled = run_profiled("compiled", interval=7)
        assert tree[0].steps == flat[0].steps == compiled[0].steps > 0
        # The parity contract: same step numbers, same attributed function.
        assert tree[1].trace == flat[1].trace == compiled[1].trace
        assert tree[1].samples == flat[1].samples == compiled[1].samples
        assert set(tree[1].samples) == {"helper", "outer"}

    def test_budget_trap_beats_sample_on_all_engines(self):
        # Budget 32 with interval 16: the trap at step 33 must fire before
        # any sample scheduled past it, identically on every engine.
        tree = run_profiled("tree", interval=16, max_steps=32)
        flat = run_profiled("flat", interval=16, max_steps=32)
        compiled = run_profiled("compiled", interval=16, max_steps=32)
        assert tree[2] == flat[2] == compiled[2] == "step budget exhausted"
        assert tree[0].steps == flat[0].steps == compiled[0].steps == 33
        assert tree[1].trace == flat[1].trace == compiled[1].trace
        assert all(step <= 32 for step, _name in tree[1].trace)

    def test_compiled_engine_batched_sampling_matches_flat(self):
        # The compiled tier batches its boundary checks per basic block; the
        # samples must still land on the identical (step, function) pairs at
        # every phase of the block structure, including interval 1 (a
        # boundary on every single step — the careful arm throughout).
        for interval in (1, 3, 16):
            flat = run_profiled("flat", interval=interval)
            compiled = run_profiled("compiled", interval=interval)
            assert flat[1].trace == compiled[1].trace, f"interval {interval}"
            assert flat[1].samples == compiled[1].samples, f"interval {interval}"


class TestAttachment:
    def test_install_unwraps_facade_and_uninstall_detaches(self):
        interpreter = WasmInterpreter(engine="flat")
        profiler = StepProfiler(interval=4)
        assert profiler.install(interpreter) is profiler
        assert interpreter.engine.profiler is profiler
        assert profiler.next_at == interpreter.engine.steps + 4
        profiler.uninstall(interpreter)
        assert interpreter.engine.profiler is None
        assert profiler.next_at == float("inf")

    def test_uninstall_leaves_foreign_profiler_alone(self):
        interpreter = WasmInterpreter(engine="tree")
        current = StepProfiler().install(interpreter)
        StepProfiler().uninstall(interpreter)
        assert interpreter.engine.profiler is current

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StepProfiler(interval=0)


class TestReporting:
    def test_hot_functions_and_record_dict(self):
        profiler = StepProfiler(interval=8)
        for step, name in ((8, "hot"), (16, "hot"), (24, "cold"), (32, None)):
            profiler.record(name, step)
        rows = profiler.hot_functions()
        assert rows[0] == ("hot", 2, 0.5)
        assert {name for name, _c, _s in rows} == {"hot", "cold", UNNAMED_FUNCTION}
        record = profiler.record_dict()
        assert record["samples"] == 4 and record["interval"] == 8
        table = profiler.format_table()
        assert "hot" in table and "4 sample(s)" in table
        profiler.reset()
        assert profiler.total_samples == 0 and profiler.hot_functions() == []

    def test_samples_advance_next_at(self):
        profiler = StepProfiler(interval=10)
        profiler.record("f", 10)
        assert profiler.next_at == 20
        profiler.record("f", 25)  # late sample (e.g. after a host call)
        assert profiler.next_at == 35
