"""Metrics registry: counters/gauges/histograms and their snapshots."""

import pytest

from repro.obs import MetricsRegistry, default_registry
from repro.obs.export import _base, validate_record


class TestCounter:
    def test_total_and_label_breakdown(self):
        counter = MetricsRegistry("t").counter("events", "help text")
        counter.inc()
        counter.inc(2, stage="lower", event="hit")
        counter.inc(stage="lower", event="miss")
        counter.inc(event="hit", stage="lower")  # label order is irrelevant
        assert counter.value == 5
        assert counter.labeled(stage="lower", event="hit") == 3
        assert counter.labeled(stage="lower", event="miss") == 1
        assert counter.labeled(stage="decode", event="hit") == 0
        snap = counter.snapshot()
        assert snap["value"] == 5
        assert {tuple(sorted(e["labels"].items())): e["value"] for e in snap["labels"]} == {
            (("event", "hit"), ("stage", "lower")): 3,
            (("event", "miss"), ("stage", "lower")): 1,
        }

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry("t")
        counter = registry.counter("c")
        counter.inc(5, kind="x")
        registry.reset()
        assert counter.value == 0 and counter.labeled(kind="x") == 0
        assert registry.counter("c") is counter


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry("t").gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13
        assert gauge.snapshot() == {"type": "gauge", "name": "depth", "value": 13}


class TestHistogram:
    def test_bucket_placement_and_stats(self):
        histogram = MetricsRegistry("t").histogram("steps", buckets=(10, 100, 1000))
        for value in (5, 10, 11, 500, 10_000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5 and snap["sum"] == 10526
        assert (snap["min"], snap["max"]) == (5, 10_000)
        # Bound 10 is inclusive (bisect_left): the observation 10 lands in
        # its own bucket, not the next one up.
        assert [(b["le"], b["count"]) for b in snap["buckets"]] == [
            (10, 2), (100, 1), (1000, 1), ("+Inf", 1),
        ]

    def test_snapshot_is_schema_valid(self):
        histogram = MetricsRegistry("t").histogram("h")
        histogram.observe(0.5)
        record = _base("metric")
        record.update(histogram.snapshot())
        validate_record(record)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry("t").histogram("bad", buckets=(10, 5))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry("t")
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry("t")
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("x")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry("t")
        registry.counter("b").inc()
        registry.gauge("a").set(1)
        assert [entry["name"] for entry in registry.snapshot()] == ["a", "b"]
        assert registry.names() == ("a", "b")

    def test_default_registry_is_shared_and_wired(self):
        import repro.runtime.batch  # noqa: F401 — registers its instruments
        import repro.runtime.cache  # noqa: F401

        registry = default_registry()
        assert registry is default_registry()
        # The wired layers register these at import time.
        for name in ("runtime.cache.events", "runtime.requests", "runtime.request_steps"):
            assert registry.get(name) is not None, name


class TestMergeSnapshots:
    def _registry(self, requests=0, depth=0, samples=()):
        registry = MetricsRegistry("t")
        counter = registry.counter("requests")
        if requests:
            counter.inc(requests, outcome="ok")
        registry.gauge("depth").set(depth)
        histogram = registry.histogram("latency", buckets=(1, 10))
        for sample in samples:
            histogram.observe(sample)
        return registry

    def test_counters_and_gauges_sum(self):
        from repro.obs import merge_snapshots

        a = self._registry(requests=3, depth=2).snapshot()
        b = self._registry(requests=5, depth=4).snapshot()
        merged = {record["name"]: record for record in merge_snapshots(a, b)}
        assert merged["requests"]["value"] == 8
        assert merged["depth"]["value"] == 6

    def test_counter_labels_merge_by_label_set(self):
        from repro.obs import merge_snapshots

        first = MetricsRegistry("t").counter("events")
        first.inc(2, stage="lower", event="hit")
        first.inc(1, stage="lower", event="miss")
        second = MetricsRegistry("t").counter("events")
        second.inc(3, event="hit", stage="lower")  # order-insensitive
        second.inc(4, stage="decode", event="hit")
        (merged,) = merge_snapshots([first.snapshot()], [second.snapshot()])
        by_labels = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in merged["labels"]
        }
        assert by_labels[(("event", "hit"), ("stage", "lower"))] == 5
        assert by_labels[(("event", "miss"), ("stage", "lower"))] == 1
        assert by_labels[(("event", "hit"), ("stage", "decode"))] == 4

    def test_histograms_merge_buckets_and_extrema(self):
        from repro.obs import merge_snapshots

        a = self._registry(samples=(0.5, 20)).snapshot()
        b = self._registry(samples=(5,)).snapshot()
        merged = {record["name"]: record for record in merge_snapshots(a, b)}
        latency = merged["latency"]
        assert latency["count"] == 3
        assert latency["sum"] == 25.5
        assert latency["min"] == 0.5 and latency["max"] == 20
        assert [bucket["count"] for bucket in latency["buckets"]] == [1, 1, 1]

    def test_disjoint_names_union(self):
        from repro.obs import merge_snapshots

        only_a = MetricsRegistry("t").counter("a")
        only_a.inc()
        only_b = MetricsRegistry("t").counter("b")
        only_b.inc(2)
        merged = {r["name"]: r["value"]
                  for r in merge_snapshots([only_a.snapshot()], [only_b.snapshot()])}
        assert merged == {"a": 1, "b": 2}

    def test_mismatched_bucket_bounds_raise(self):
        from repro.obs import merge_snapshots

        a = MetricsRegistry("t").histogram("h", buckets=(1, 10)).snapshot()
        b = MetricsRegistry("t").histogram("h", buckets=(1, 100)).snapshot()
        with pytest.raises(ValueError, match="bucket"):
            merge_snapshots([a], [b])

    def test_type_conflict_raises(self):
        from repro.obs import merge_snapshots

        counter = MetricsRegistry("t").counter("x")
        gauge = MetricsRegistry("t").gauge("x")
        with pytest.raises(ValueError):
            merge_snapshots([counter.snapshot()], [gauge.snapshot()])

    def test_empty_and_single_snapshot_identity(self):
        from repro.obs import merge_snapshots

        assert merge_snapshots() == []
        snapshot = self._registry(requests=2, depth=1, samples=(3,)).snapshot()
        merged = merge_snapshots(snapshot)
        assert {r["name"]: r.get("value") for r in merged} == {
            r["name"]: r.get("value") for r in snapshot
        }
        # Merging must not mutate its inputs (records are copied).
        assert merged[0] is not snapshot[0]
