"""The JSONL schema: emit → validate → read back, and rejection cases."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    JsonlSink,
    MetricsRegistry,
    SchemaError,
    StepProfiler,
    Tracer,
    read_records,
    span_record,
    validate_record,
)
from repro.obs.export import event_record


def _finished_span(tracer=None, name="op", **attrs):
    tracer = tracer or Tracer()
    with tracer.span(name, **attrs) as span:
        pass
    return span


class TestRecords:
    def test_span_record_shape(self):
        span = _finished_span(name="compile.lower", key="abc")
        record = validate_record(span_record(span))
        assert record["schema"] == SCHEMA_VERSION
        assert record["kind"] == "span"
        assert record["name"] == "compile.lower"
        assert record["attrs"] == {"key": "abc"}
        assert record["status"] == "ok" and record["error"] is None
        assert record["duration_s"] >= 0.0

    def test_event_record_shape(self):
        record = validate_record(event_record("bench.done", ok=True, mode="smoke"))
        assert record["kind"] == "event"
        assert record["attrs"] == {"ok": True, "mode": "smoke"}


class TestValidation:
    def test_rejects_unknown_kind_and_version(self):
        record = event_record("x")
        with pytest.raises(SchemaError, match="unknown record kind"):
            validate_record({**record, "kind": "trace"})
        with pytest.raises(SchemaError, match="schema version"):
            validate_record({**record, "schema": SCHEMA_VERSION + 1})

    def test_rejects_missing_and_mistyped_fields(self):
        record = span_record(_finished_span())
        broken = dict(record)
        del broken["trace_id"]
        with pytest.raises(SchemaError, match="missing field 'trace_id'"):
            validate_record(broken)
        with pytest.raises(SchemaError, match="'duration_s'"):
            validate_record({**record, "duration_s": "fast"})
        # bool is not a number, even though Python's bool subclasses int.
        with pytest.raises(SchemaError, match="'duration_s'"):
            validate_record({**record, "duration_s": True})

    def test_rejects_non_scalar_attrs(self):
        record = span_record(_finished_span())
        with pytest.raises(SchemaError, match="JSON scalar"):
            validate_record({**record, "attrs": {"nested": {"a": 1}}})

    def test_rejects_unknown_span_status(self):
        record = span_record(_finished_span())
        with pytest.raises(SchemaError, match="span status"):
            validate_record({**record, "status": "maybe"})


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry = MetricsRegistry("t")
        registry.counter("hits").inc(3, stage="lower")
        registry.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        with JsonlSink(path) as sink:
            sink.emit_span(_finished_span(name="request", export="fact"))
            sink.emit_event("marker", phase="end")
            sink.emit_metrics(registry)
            assert sink.records_written == 4
        records = list(read_records(path))
        assert [r["kind"] for r in records] == ["span", "event", "metric", "metric"]
        histogram = records[-1]
        assert histogram["buckets"][-1]["le"] == "+Inf"
        # Strict JSON end-to-end: every line parses with a vanilla loader.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_sink_validates_before_writing(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        with pytest.raises(SchemaError):
            sink.emit({"schema": SCHEMA_VERSION, "kind": "span", "ts": 0.0})
        sink.close()
        assert sink.records_written == 0

    def test_tracer_sink_integration(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        sink.close()
        inner, outer = list(read_records(path))
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]
        assert tracer.drain() == []  # sink mode never buffers

    def test_emit_profile(self, tmp_path):
        path = tmp_path / "prof.jsonl"
        profiler = StepProfiler(interval=8)
        profiler.record("hot", 8)
        profiler.record("hot", 16)
        profiler.record(None, 24)
        with JsonlSink(path) as sink:
            sink.emit_profile(profiler)
        (record,) = read_records(path)
        assert record["kind"] == "profile"
        assert record["samples"] == 3
        assert record["functions"][0] == {"function": "hot", "samples": 2, "share": 0.666667}

    def test_read_records_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(validate_record(event_record("ok")))
        path.write_text(good + "\n{not json}\n")
        with pytest.raises(SchemaError, match="2: not valid JSON"):
            list(read_records(path))
        path.write_text(good + "\n" + json.dumps({"schema": SCHEMA_VERSION}) + "\n")
        with pytest.raises(SchemaError, match=":2:"):
            list(read_records(path))
