"""Tracer semantics: no-op identity, nesting, trace propagation, status."""

import threading

import pytest

from repro.obs import (
    NOOP_TRACER,
    NoOpSpan,
    Tracer,
    current_span,
    get_tracer,
    new_trace_id,
    set_tracer,
    use_tracer,
)
from repro.wasm.interpreter import WasmTrap


class TestNoOpTracer:
    def test_is_the_global_default(self):
        assert get_tracer() is NOOP_TRACER
        assert not NOOP_TRACER.enabled

    def test_span_returns_one_shared_instance(self):
        # The disabled path must never allocate: every span() call hands
        # back the same object, usable as a do-nothing context manager.
        a = NOOP_TRACER.span("x", trace_id="t", attr=1)
        b = NOOP_TRACER.span("y")
        assert a is b
        assert isinstance(a, NoOpSpan)
        with a as span:
            assert span is a
            assert span.set_attr(k="v") is span
            assert span.attrs == {}
        assert NOOP_TRACER.current_span() is None
        assert NOOP_TRACER.drain() == []

    def test_noop_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NOOP_TRACER.span("x"):
                raise ValueError("boom")


class TestSpans:
    def test_nesting_assigns_parents_and_shared_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.drain()
        assert [s.name for s in spans] == ["inner", "outer"]  # finish order
        assert outer.parent_id is None
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_explicit_trace_id_overrides_inherited(self):
        tracer = Tracer()
        pinned = new_trace_id()
        with tracer.span("outer"):
            with tracer.span("inner", trace_id=pinned) as inner:
                assert inner.trace_id == pinned

    def test_trap_exceptions_tag_trap_other_exceptions_error(self):
        tracer = Tracer()
        with pytest.raises(WasmTrap):
            with tracer.span("t"):
                raise WasmTrap("unreachable executed")
        with pytest.raises(RuntimeError):
            with tracer.span("e"):
                raise RuntimeError("nope")
        trap, error = tracer.drain()
        assert (trap.status, trap.error) == ("trap", "unreachable executed")
        assert error.status == "error" and "RuntimeError: nope" in error.error

    def test_explicit_set_trap_records_kind_attr(self):
        tracer = Tracer()
        with tracer.span("request") as span:
            span.set_trap("step budget exhausted", kind="step_budget")
        (span,) = tracer.drain()
        assert span.status == "trap"
        assert span.attrs["trap_kind"] == "step_budget"

    def test_buffer_cap_drops_and_counts(self):
        tracer = Tracer(max_buffer=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.drain()) == 2
        assert tracer.dropped == 2

    def test_threads_nest_independently(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(f"root-{tag}") as root:
                with tracer.span(f"child-{tag}") as child:
                    seen[tag] = (root, child)

        threads = [threading.Thread(target=worker, args=(t,)) for t in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tag, (root, child) in seen.items():
            assert child.parent_id == root.span_id
            assert child.trace_id == root.trace_id
        assert seen["a"][0].trace_id != seen["b"][0].trace_id


class TestGlobalInstall:
    def test_use_tracer_scopes_install_and_restore(self):
        tracer = Tracer()
        assert get_tracer() is NOOP_TRACER
        with use_tracer(tracer) as installed:
            assert installed is tracer and get_tracer() is tracer
            with tracer.span("x") as span:
                assert current_span() is span
        assert get_tracer() is NOOP_TRACER
        assert current_span() is None

    def test_set_tracer_none_means_disable(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NOOP_TRACER
