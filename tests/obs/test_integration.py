"""Obs wired through the real stack: facade, service, batch runner, cache."""

import pytest

from repro.api import CompileConfig, Diagnostics, compile as api_compile, serve
from repro.core.syntax import (
    Function,
    NumConst,
    NumType,
    Return,
    SizeConst,
    arrow,
    funtype,
    i32,
    make_module,
)
from repro.core.syntax import GetLocal, IntBinop, NumBinop
from repro.obs import NOOP_TRACER, Tracer, use_tracer
from repro.runtime import ModuleCache, Request
from repro.runtime.batch import classify_trap
from repro.wasm.interpreter import WasmTrap


def tiny_module(name="obs_it"):
    double = Function(
        funtype=funtype([i32()], [i32()]),
        locals_sizes=(SizeConst(32),),
        body=(GetLocal(0), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), Return()),
        exports=("double",),
        name="double",
    )
    return make_module(functions=[double], name=name)


def spans_by_name(tracer):
    index = {}
    for span in tracer.drain():
        index.setdefault(span.name, []).append(span)
    return index


class TestServiceTracing:
    def test_call_nests_request_under_service_call_with_one_trace(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            assert service.call("double", [21]) == [42]
        spans = spans_by_name(tracer)
        (call,) = spans["service.call"]
        (request,) = spans["request"]
        assert request.parent_id == call.span_id
        assert request.trace_id == call.trace_id
        assert request.attrs["ok"] is True
        assert request.attrs["steps"] > 0
        # The compile side of the same serve() call traced too.
        assert "api.serve" in spans and "api.compile" in spans

    def test_session_and_run_spans(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            outcome = service.session([("double", (2,)), ("double", (3,))])
            report = service.run([("double", (4,))])
        assert outcome.ok and report.ok_count == 1
        spans = spans_by_name(tracer)
        (session,) = spans["service.session"]
        assert session.attrs["calls"] == 2
        session_request = [s for s in spans["request"] if s.parent_id == session.span_id]
        assert len(session_request) == 1
        assert outcome.trace_id == session_request[0].trace_id == session.trace_id

    def test_every_request_outcome_carries_its_trace_id(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            report = service.run([("double", (n,)) for n in range(3)])
        request_spans = spans_by_name(tracer)["request"]
        assert len(request_spans) == 3
        span_traces = {s.trace_id for s in request_spans}
        assert {o.trace_id for o in report.outcomes} == span_traces

    def test_explicit_request_trace_id_propagates_to_span_and_outcome(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            outcome = service.run_one(Request("double", (5,), trace_id="feedface00000001"))
        assert outcome.trace_id == "feedface00000001"
        (request,) = spans_by_name(tracer)["request"]
        assert request.trace_id == "feedface00000001"

    def test_trace_id_present_even_without_tracing(self):
        service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
        outcome = service.run_one(Request("double", (5,), trace_id="cafe000000000001"))
        assert outcome.trace_id == "cafe000000000001"


class TestTrapTagging:
    def test_budget_trap_tags_span_and_outcome(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            outcome = service.run_one(Request("double", (5,), max_steps=1))
        assert not outcome.ok
        assert outcome.trap_kind == "step_budget"
        (request,) = spans_by_name(tracer)["request"]
        assert request.status == "trap"
        assert request.attrs["trap_kind"] == "step_budget"
        assert request.attrs["budget"] == 1

    def test_service_call_span_traps_when_call_raises(self):
        with use_tracer(Tracer()) as tracer:
            service = serve(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
            with pytest.raises(WasmTrap):
                service.call("double", [5], max_steps=1)
        (call,) = spans_by_name(tracer)["service.call"]
        assert call.status == "trap"

    def test_classify_trap_kinds_are_stable(self):
        assert classify_trap("step budget exhausted") == "step_budget"
        assert classify_trap("out-of-bounds memory access at 12") == "oob_memory"
        assert classify_trap("unreachable executed") == "unreachable"
        assert classify_trap("i32 division by zero") == "div_by_zero"
        assert classify_trap("something novel") == "other"


class TestCompileTelemetry:
    def test_cache_events_count_hits_misses_and_bypasses(self):
        from repro.obs import default_registry

        events = default_registry().counter("runtime.cache.events")
        cache = ModuleCache()
        config = CompileConfig(opt_level="O0", cache="private")

        before_miss = events.labeled(stage="lower", event="miss")
        api_compile(tiny_module("obs_cache_a"), config, cache=cache)
        assert events.labeled(stage="lower", event="miss") == before_miss + 1

        before_hit = events.labeled(stage="program", event="hit")
        api_compile(tiny_module("obs_cache_a"), config, cache=cache)
        assert events.labeled(stage="program", event="hit") == before_hit + 1

        before_bypass = events.labeled(stage="lower", event="bypass")
        api_compile(tiny_module("obs_cache_b"), CompileConfig(opt_level="O0", cache="none"))
        assert events.labeled(stage="lower", event="bypass") == before_bypass + 1

    def test_compile_stage_spans_share_the_api_compile_trace(self):
        with use_tracer(Tracer()) as tracer:
            api_compile(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
        spans = spans_by_name(tracer)
        (root,) = spans["api.compile"]
        assert root.attrs["cache_hit"] is False
        for name in ("compile.frontend", "compile.link", "compile.lower"):
            for span in spans[name]:
                assert span.trace_id == root.trace_id


class TestDiagnosticsRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        program = api_compile(tiny_module(), CompileConfig(opt_level="O2", cache="none"))
        data = program.diagnostics.to_dict()
        rebuilt = Diagnostics.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.config == program.diagnostics.config
        assert [t.stage for t in rebuilt.stages] == [t.stage for t in program.diagnostics.stages]
        # The rebuilt optimization stats still render.
        assert "optimization:" in rebuilt.format_report()

    def test_round_trip_survives_json(self):
        import json

        program = api_compile(tiny_module(), CompileConfig(opt_level="O1", cache="none"))
        data = json.loads(json.dumps(program.diagnostics.to_dict()))
        assert Diagnostics.from_dict(data).to_dict() == data

    def test_format_report_lists_untimed_bypass_stages(self):
        program = api_compile(tiny_module(), CompileConfig(opt_level="O0", cache="none"))
        report = program.diagnostics.format_report()
        # Off-cache, typecheck/decode never run under a timer but their
        # bypass outcomes still show in pipeline order.
        assert "typecheck" in report and "[bypass]" in report
        assert report.index("typecheck") < report.index("decode")


def test_default_tracer_restored():
    """Obs tests must not leak an installed tracer into the rest of the run."""

    from repro.obs import get_tracer

    assert get_tracer() is NOOP_TRACER
