"""Tests for the FFI: linking checks, static linking, the paper's scenarios."""

import pytest

from repro.core.semantics import Trap
from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module
from repro.core.typing.errors import LinkError, RichWasmTypeError
from repro.ffi import (
    Program,
    check_link,
    counter_program,
    fig1_unsafe_program,
    fig3_programs,
    link_modules,
)


class TestFig1:
    def test_boundary_type_mismatch_rejected(self):
        scenario = fig1_unsafe_program()
        with pytest.raises(LinkError):
            check_link(scenario.modules())

    def test_each_side_is_fine_on_its_own(self):
        scenario = fig1_unsafe_program()
        check_module(scenario.ml)
        check_module(scenario.client)

    def test_error_mentions_the_import(self):
        scenario = fig1_unsafe_program()
        with pytest.raises(LinkError, match="stash"):
            check_link(scenario.modules())


class TestFig3:
    def test_unsafe_variant_rejected_by_typechecker(self):
        unsafe, _ = fig3_programs()
        with pytest.raises(RichWasmTypeError):
            check_module(unsafe.ml)

    def test_unsafe_client_alone_is_fine(self):
        unsafe, _ = fig3_programs()
        check_module(unsafe.client)

    def test_safe_variant_links_and_type_checks(self):
        _, safe = fig3_programs()
        check_link(safe.modules())

    def test_safe_variant_runs_on_interpreter(self):
        _, safe = fig3_programs()
        program = Program(safe.modules())
        instance = program.instantiate()
        instance.invoke("client", "store", [NumV(NumType.I32, 42)])
        taken = instance.invoke("client", "take", [UnitV()])
        assert taken[0].value == 42

    def test_safe_variant_runs_on_wasm(self):
        _, safe = fig3_programs()
        program = Program(safe.modules())
        wasm = program.instantiate_wasm()
        wasm.invoke("client", "store", [7])
        assert wasm.invoke("client", "take", [0]) == [7]

    def test_taking_twice_traps(self):
        _, safe = fig3_programs()
        program = Program(safe.modules())
        instance = program.instantiate()
        instance.invoke("client", "store", [NumV(NumType.I32, 1)])
        instance.invoke("client", "take", [UnitV()])
        with pytest.raises(Trap):
            instance.invoke("client", "take", [UnitV()])


class TestFig9Counter:
    def test_counter_on_interpreter(self):
        program = Program(counter_program().modules())
        instance = program.instantiate()
        instance.invoke("client", "client_init", [NumV(NumType.I32, 100)])
        for _ in range(4):
            instance.invoke("client", "client_tick", [UnitV()])
        total = instance.invoke("client", "client_total", [UnitV()])
        assert total[0].value == 104

    def test_counter_on_wasm(self):
        program = Program(counter_program().modules())
        wasm = program.instantiate_wasm()
        wasm.invoke("client", "client_init", [10])
        for _ in range(3):
            wasm.invoke("client", "client_tick", [0])
        assert wasm.invoke("client", "client_total", [0]) == [13]

    def test_custom_increment(self):
        program = Program(counter_program(increment=5).modules())
        instance = program.instantiate()
        instance.invoke("client", "client_init", [NumV(NumType.I32, 0)])
        instance.invoke("client", "client_tick", [UnitV()])
        instance.invoke("client", "client_tick", [UnitV()])
        assert instance.invoke("client", "client_total", [UnitV()])[0].value == 10

    def test_both_backends_agree(self):
        program = Program(counter_program().modules())
        instance = program.instantiate()
        wasm = program.instantiate_wasm()
        instance.invoke("client", "client_init", [NumV(NumType.I32, 1)])
        wasm.invoke("client", "client_init", [1])
        for _ in range(5):
            instance.invoke("client", "client_tick", [UnitV()])
            wasm.invoke("client", "client_tick", [0])
        assert (
            instance.invoke("client", "client_total", [UnitV()])[0].value
            == wasm.invoke("client", "client_total", [0])[0]
        )


class TestStaticLinking:
    def test_linked_module_has_no_imports(self):
        linked = link_modules(counter_program().modules())
        assert not linked.function_imports()
        check_module(linked)

    def test_linked_module_exports_are_namespaced(self):
        linked = link_modules(counter_program().modules())
        exports = linked.exported_functions()
        assert "client.client_tick" in exports
        assert "counterlib.counter_bump" in exports

    def test_unique_exports_also_keep_bare_names(self):
        linked = link_modules(counter_program().modules())
        exports = linked.exported_functions()
        assert "client_tick" in exports

    def test_linking_unsafe_program_fails(self):
        unsafe, _ = fig3_programs()
        with pytest.raises(RichWasmTypeError):
            link_modules(unsafe.modules())

    def test_instantiation_order_respects_dependencies(self):
        program = Program(counter_program().modules())
        order = program.instantiation_order()
        assert order.index("counterlib") < order.index("client")


class TestWasmInvokeResolution:
    """WasmProgramInstance.invoke never falls back silently (satellite of
    the api_redesign PR): unknown names raise LinkError naming both
    candidates, ambiguous bare/qualified pairs raise instead of guessing."""

    def test_unknown_export_names_both_candidates(self):
        program = Program(counter_program().modules())
        wasm = program.instantiate_wasm()
        with pytest.raises(LinkError) as excinfo:
            wasm.invoke("client", "missing", [])
        message = str(excinfo.value)
        assert "'client.missing'" in message and "'missing'" in message
        assert "client.client_init" in message  # lists what exists

    def test_bare_name_resolves_when_qualified_absent(self):
        program = Program(counter_program().modules())
        wasm = program.instantiate_wasm()
        # The linked module re-exports bare names for the same indices; a
        # module prefix that does not exist still resolves via the bare name.
        wasm.invoke("nosuchmodule", "client_init", [3])
        assert wasm.invoke("client", "client_total", [0]) == [3]

    def test_ambiguous_bare_and_qualified_raise(self):
        program = Program(counter_program().modules())
        wasm = program.instantiate_wasm()
        exports = wasm.instance.exports
        # Force the pathological table: a bare name colliding with a
        # qualified one while naming a *different* function.
        exports["client_init"] = exports["client.client_total"]
        with pytest.raises(LinkError, match="ambiguous"):
            wasm.invoke("client", "client_init", [0])
