"""Property tests for the hash-consing layer (PR 5 tentpole).

Interning is only allowed to change *performance*, never meaning.  These
tests pit the interned fast paths against their structural definitions over
randomly generated types:

* construction canonicalization — rebuilding a term node-by-node returns the
  same object; a twin built with interning disabled is a distinct object that
  is still ``==``, hashes identically, and digests identically;
* equality — identity-fast ``types_equal`` agrees with the structural oracle
  (``structural_types_equal``), including the size-normalization semantics
  (``32 + σ`` ≡ ``σ + 32``) and mixed interned/non-interned inputs;
* shift/substitution — the free-variable-summary short-circuits produce
  results structurally identical to the full walks on non-interned twins;
* content digests — stable across processes (subprocess round-trip of the
  runtime cache's ``content_key``).
"""

import dataclasses
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.syntax import (
    LIN,
    UNR,
    ArrayHT,
    ExHT,
    LocVar,
    QualVar,
    SizeConst,
    SizePlus,
    SizeVar,
    StructHT,
    VariantHT,
    canonical,
    free_levels,
    interning_disabled,
    is_interned,
    lin_loc,
    size_structurally_equal,
    structural_digest,
    unr_loc,
)
from repro.core.syntax import intern
from repro.core.syntax.types import (
    ArrowType,
    CapT,
    CodeRefT,
    ExLocT,
    FunType,
    LocQuant,
    OwnT,
    ProdT,
    PtrT,
    QualQuant,
    RecT,
    RefT,
    Privilege,
    Shift,
    SizeQuant,
    Subst,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    shift_type,
    subst_type,
)
from repro.core.typing.equality import structural_types_equal, types_equal

REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------------
# Generators (seeded type/term strategies over the full binder vocabulary)
# ---------------------------------------------------------------------------

quals = st.sampled_from([UNR, LIN, QualVar(0), QualVar(1)])
locs = st.sampled_from([lin_loc(0), unr_loc(1), LocVar(0), LocVar(1), LocVar(2)])
privileges = st.sampled_from([Privilege.RW, Privilege.R])


@st.composite
def size_exprs(draw, max_depth=3):
    if max_depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return SizeConst(draw(st.sampled_from([0, 1, 32, 64])))
        return SizeVar(draw(st.integers(0, 2)))
    return SizePlus(
        draw(size_exprs(max_depth=max_depth - 1)),
        draw(size_exprs(max_depth=max_depth - 1)),
    )


@st.composite
def quantifier_lists(draw, depth=0):
    """A quantifier telescope (the binder prefix of a ``FunType``)."""

    quants = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            quants.append(LocQuant())
        elif kind == 1:
            quants.append(
                SizeQuant(
                    tuple(draw(st.lists(size_exprs(max_depth=1), max_size=2))),
                    tuple(draw(st.lists(size_exprs(max_depth=1), max_size=2))),
                )
            )
        elif kind == 2:
            quants.append(
                QualQuant(
                    tuple(draw(st.lists(quals, max_size=2))),
                    tuple(draw(st.lists(quals, max_size=2))),
                )
            )
        else:
            quants.append(
                TypeQuant(draw(quals), draw(size_exprs(max_depth=1)), draw(st.booleans()))
            )
    return tuple(quants)


@st.composite
def fun_types(draw, depth=1):
    """A possibly-polymorphic function type — exercises the telescope
    free-level rule (``_funtype_levels``), the trickiest summary."""

    params = draw(st.lists(rich_types(depth=depth), max_size=2))
    results = draw(st.lists(rich_types(depth=depth), max_size=2))
    return FunType(draw(quantifier_lists()), ArrowType(tuple(params), tuple(results)))


@st.composite
def rich_types(draw, depth=3):
    qual = draw(quals)
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Type(UnitT(), qual)
        if choice == 1:
            return Type(VarT(draw(st.integers(0, 2))), qual)
        return Type(PtrT(draw(locs)), qual)
    choice = draw(st.integers(0, 7))
    if choice == 0:
        components = draw(st.lists(rich_types(depth=depth - 1), min_size=1, max_size=3))
        return Type(ProdT(tuple(components)), qual)
    if choice == 1:
        return Type(RefT(draw(privileges), draw(locs), draw(heap_types(depth=depth - 1))), qual)
    if choice == 2:
        return Type(CapT(draw(privileges), draw(locs), draw(heap_types(depth=depth - 1))), qual)
    if choice == 3:
        return Type(OwnT(draw(locs)), qual)
    if choice == 4:
        return Type(RecT(draw(quals), draw(rich_types(depth=depth - 1))), qual)
    if choice == 5:
        return Type(ExLocT(draw(rich_types(depth=depth - 1))), qual)
    if choice == 6:
        return Type(CodeRefT(draw(fun_types(depth=depth - 1))), qual)
    return draw(rich_types(depth=0))


@st.composite
def heap_types(draw, depth=1):
    choice = draw(st.integers(0, 3))
    if choice == 0:
        cases = draw(st.lists(rich_types(depth=depth), min_size=1, max_size=3))
        return VariantHT(tuple(cases))
    if choice == 1:
        fields = draw(
            st.lists(
                st.tuples(rich_types(depth=depth), size_exprs(max_depth=2)),
                min_size=1,
                max_size=3,
            )
        )
        return StructHT(tuple(fields))
    if choice == 2:
        return ArrayHT(draw(rich_types(depth=depth)))
    return ExHT(draw(quals), draw(size_exprs(max_depth=2)), draw(rich_types(depth=depth)))


def rebuild(value):
    """Reconstruct a term node by node through the public constructors."""

    if type(value) in intern._REGISTERED:
        return type(value)(
            *[rebuild(getattr(value, f.name)) for f in dataclasses.fields(value)]
        )
    if type(value) is tuple:
        return tuple(rebuild(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# Construction canonicalization
# ---------------------------------------------------------------------------


class TestInterningCanonicalization:
    @given(rich_types())
    @settings(max_examples=100)
    def test_rebuilding_returns_the_same_object(self, ty):
        assert is_interned(ty)
        assert rebuild(ty) is ty

    @given(rich_types())
    @settings(max_examples=100)
    def test_disabled_twin_is_distinct_but_structurally_identical(self, ty):
        with interning_disabled():
            twin = rebuild(ty)
        assert twin is not ty
        assert not is_interned(twin)
        assert twin == ty and ty == twin
        assert hash(twin) == hash(ty)
        assert structural_digest(twin) == structural_digest(ty)

    @given(rich_types())
    @settings(max_examples=60)
    def test_pickle_roundtrip_reinterns(self, ty):
        import copy
        import pickle

        assert pickle.loads(pickle.dumps(ty)) is ty
        assert copy.deepcopy(ty) is ty


# ---------------------------------------------------------------------------
# Equality vs the structural oracle
# ---------------------------------------------------------------------------


def _swap_first_plus(size):
    """Commute the outermost ``+`` (the size-normalization test vector)."""

    if isinstance(size, SizePlus):
        return SizePlus(size.right, size.left)
    return size


class TestEqualityAgainstOracle:
    @given(rich_types(), rich_types())
    @settings(max_examples=150)
    def test_types_equal_matches_structural_oracle(self, a, b):
        assert types_equal(a, b) == structural_types_equal(a, b)
        assert types_equal(a, a) and types_equal(b, b)

    @given(rich_types())
    @settings(max_examples=100)
    def test_mixed_interned_and_twin_inputs_agree(self, ty):
        with interning_disabled():
            twin = rebuild(ty)
        assert types_equal(ty, twin) and types_equal(twin, ty)

    @given(size_exprs(), size_exprs())
    @settings(max_examples=150)
    def test_size_equality_is_canonical_identity(self, a, b):
        assert size_structurally_equal(a, b) == (canonical(a) is canonical(b))

    @given(size_exprs())
    @settings(max_examples=100)
    def test_commuted_sums_stay_equal(self, size):
        swapped = _swap_first_plus(size)
        assert size_structurally_equal(size, swapped)
        assert canonical(size) is canonical(swapped)

    @given(rich_types(), size_exprs())
    @settings(max_examples=100)
    def test_commuted_struct_field_sizes_stay_types_equal(self, element, size):
        a = Type(RefT(Privilege.RW, lin_loc(0), StructHT(((element, size),))), LIN)
        b = Type(
            RefT(Privilege.RW, lin_loc(0), StructHT(((element, _swap_first_plus(size)),))),
            LIN,
        )
        assert types_equal(a, b)
        assert structural_types_equal(a, b)


# ---------------------------------------------------------------------------
# Shift / substitution short-circuits vs the full walks
# ---------------------------------------------------------------------------

shifts = st.builds(
    Shift,
    locs=st.integers(0, 2),
    sizes=st.integers(0, 2),
    quals=st.integers(0, 2),
    types=st.integers(0, 2),
)


class TestShiftSubstAgainstFullWalk:
    @given(rich_types(), shifts)
    @settings(max_examples=150)
    def test_shift_agrees_with_uninterned_walk(self, ty, shift):
        with interning_disabled():
            twin = rebuild(ty)
            expected = shift_type(twin, shift)
        assert shift_type(ty, shift) == expected

    @given(rich_types(), st.integers(0, 2), rich_types())
    @settings(max_examples=100)
    def test_subst_agrees_with_uninterned_walk(self, ty, index, replacement):
        # Compared up to size normalization: the full walk constant-folds
        # sums as a rebuild side effect (``size_plus``), while a skipped
        # no-op substitution keeps the original term — the same contract as
        # the pre-existing ``subst.is_empty()`` early return.
        subst = Subst(types={index: replacement.pretype}, locs={0: lin_loc(7)})
        with interning_disabled():
            twin = rebuild(ty)
            twin_subst = Subst(types={index: rebuild(replacement.pretype)}, locs={0: lin_loc(7)})
            expected = subst_type(twin, twin_subst)
        assert structural_types_equal(subst_type(ty, subst), expected)

    @given(rich_types())
    @settings(max_examples=100)
    def test_closed_terms_shift_to_themselves(self, ty):
        if free_levels(ty) == (0, 0, 0, 0):
            assert shift_type(ty, Shift(locs=3, sizes=3, quals=3, types=3)) is ty


class TestFunTypeTelescopes:
    """The quantifier-telescope free-level rule (``_funtype_levels``) is the
    most intricate summary — pit it against the full walks directly."""

    @given(fun_types(), shifts)
    @settings(max_examples=150)
    def test_funtype_shift_agrees_with_uninterned_walk(self, ft, shift):
        from repro.core.syntax.types import shift_funtype

        with interning_disabled():
            twin = rebuild(ft)
            expected = shift_funtype(twin, shift)
        assert shift_funtype(ft, shift) == expected

    @given(fun_types(), st.integers(0, 2), rich_types(depth=1))
    @settings(max_examples=100)
    def test_funtype_subst_agrees_with_uninterned_walk(self, ft, index, replacement):
        # Up to size normalization, as in test_subst_agrees_with_uninterned_walk.
        from repro.core.syntax.types import subst_funtype
        from repro.core.typing.equality import structural_funtypes_equal

        subst = Subst(
            types={index: replacement.pretype},
            sizes={0: SizeConst(8)},
            quals={1: LIN},
            locs={0: lin_loc(9)},
        )
        with interning_disabled():
            twin = rebuild(ft)
            twin_subst = Subst(
                types={index: rebuild(replacement.pretype)},
                sizes={0: SizeConst(8)},
                quals={1: LIN},
                locs={0: lin_loc(9)},
            )
            expected = subst_funtype(twin, twin_subst)
        assert structural_funtypes_equal(subst_funtype(ft, subst), expected)

    @given(fun_types(), fun_types())
    @settings(max_examples=100)
    def test_funtype_equality_matches_structural_oracle(self, a, b):
        from repro.core.typing.equality import funtypes_equal, structural_funtypes_equal

        assert funtypes_equal(a, b) == structural_funtypes_equal(a, b)
        assert funtypes_equal(a, a) and funtypes_equal(b, b)


# ---------------------------------------------------------------------------
# Digest stability across processes
# ---------------------------------------------------------------------------

_CORPUS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {benchmarks!r})
from workloads import synthetic_module
from repro.api import CompileConfig
from repro.runtime.cache import content_key
from repro.core.syntax import LIN, SizeConst, SizePlus, SizeVar, StructHT, Type, RefT, lin_loc, i32
from repro.core.syntax.types import Privilege

ty = Type(RefT(Privilege.RW, lin_loc(3), StructHT(((i32(), SizePlus(SizeConst(32), SizeVar(0))),))), LIN)
key = content_key(
    "stability-probe",
    synthetic_module(7),
    ty,
    CompileConfig(opt_level="O2", memory_pages=8).content_key(),
)
print(key)
"""


def _corpus_script() -> str:
    return _CORPUS_SCRIPT.format(
        src=str(REPO_ROOT / "src"), benchmarks=str(REPO_ROOT / "benchmarks")
    )


class TestDigestStability:
    def test_content_keys_identical_across_fresh_processes(self):
        """Two fresh interpreters digest the same corpus to the same key —
        the keyspace carries no ``id()``/``hash()`` leakage."""

        runs = [
            subprocess.run(
                [sys.executable, "-c", _corpus_script()],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert len(runs[0]) == 64 and int(runs[0], 16) >= 0

    def test_in_process_key_matches_subprocess_key(self):
        namespace: dict = {}
        exec(compile(_corpus_script(), "<stability-probe>", "exec"), namespace)
        sub = subprocess.run(
            [sys.executable, "-c", _corpus_script()],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert namespace["key"] == sub
