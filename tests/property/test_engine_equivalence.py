"""Property tests: the tree walker and the flat VM are indistinguishable.

Random modules — from the existing RichWasm program generators (lowered to
Wasm) and from a dedicated structured-control-flow generator exercising the
flat decoder (nested blocks/loops/ifs, multi-depth branches, ``br_table``,
memory traffic, globals, trapping divisions) — must agree on results, traps,
final linear memory, globals, *and* cumulative step counts across engines.

The structured generator is a plain recursive builder driven by a seeded
``random.Random`` (hypothesis supplies the seed): deeply recursive
``st.composite`` strategies are orders of magnitude slower to draw from, and
shrinking the seed still shrinks the module.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.syntax import Function, funtype, i32, make_module
from repro.core.typing import check_module
from repro.api import CompileConfig
from repro.lower import lower_module
from repro.opt import run_engine_cross_check
from repro.wasm import (
    Binop,
    Const,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    Relop,
    StoreI,
    Testop as WTestop,  # aliased so pytest does not collect it as a test class
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmMemory,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WIf,
    WLoop,
    validate_module,
)

from test_property_based import arith_programs, stateful_programs

I32 = ValType.I32
FT = WasmFuncType
EMPTY = FT((), ())

# Locals 0..1: parameters.  2..4: loop counters by nesting depth.  5..9: data.
_DATA_LOCALS = (0, 1, 5, 6, 7, 8, 9)
_N_LOCALS = 10
_ADDR_MASK = 0xFFF8  # keeps addresses within the single 64 KiB page


# ---------------------------------------------------------------------------
# A generator of well-typed structured Wasm modules
# ---------------------------------------------------------------------------


def _expr(rng: random.Random, depth: int = 2) -> list:
    """Instructions that push exactly one i32."""

    choice = rng.randrange(8 if depth > 0 else 3)
    if choice == 0:
        return [Const(I32, rng.randrange(0x100000000))]
    if choice == 1:
        return [LocalGet(rng.choice(_DATA_LOCALS))]
    if choice == 2:
        return [GlobalGet(rng.randrange(2))]
    if choice == 3:  # binop over two sub-expressions
        op = rng.choice(["add", "sub", "mul", "and", "or", "xor", "shl", "shr_u"])
        return _expr(rng, depth - 1) + _expr(rng, depth - 1) + [Binop(I32, op)]
    if choice == 4:  # possibly-trapping division: engines must agree on traps
        op = rng.choice(["div_u", "div_s", "rem_u", "rem_s"])
        divisor = rng.choice([0, 1, 2, 3, 7, 0xFFFFFFFF])
        return _expr(rng, depth - 1) + [Const(I32, divisor), Binop(I32, op)]
    if choice == 5:  # value-producing block (non-empty blocktype)
        return [WBlock(FT((), (I32,)), tuple(_expr(rng, depth - 1)))]
    if choice == 6:  # value-producing loop: fallthrough keeps the result
        return [WLoop(FT((), (I32,)), tuple(_expr(rng, depth - 1)))]
    # masked memory load
    return _expr(rng, depth - 1) + [Const(I32, _ADDR_MASK), Binop(I32, "and"), Load(I32)]


def _branch_targets(labels: tuple) -> list:
    """Branch depths that are safe for random use: block/if labels only.

    A random branch to a *loop* label would re-enter the loop bypassing the
    counter decrement — a non-terminating program.  ``labels`` is ordered
    outermost to innermost; ``labels[i]`` is True for loop labels.  Only the
    generated back-edge (emitted with the decrement in ``_stmt``) may target
    a loop.
    """

    n = len(labels)
    return [d for d in range(n) if not labels[n - 1 - d]]


def _stmt(rng: random.Random, depth: int, loop_nesting: int, labels: tuple) -> list:
    """Instructions with net-zero stack effect."""

    targets = _branch_targets(labels)
    kinds = ["assign", "assign", "store", "global_set"]
    if depth > 0:
        kinds.extend(["if", "block"])
        if loop_nesting < 3:
            kinds.append("loop")
    if targets:
        kinds.extend(["br_if", "br_table"])
    kind = rng.choice(kinds)

    if kind == "assign":
        body = _expr(rng)
        target = rng.choice(_DATA_LOCALS)
        if rng.random() < 0.5:
            return body + [LocalSet(target)]
        return body + [LocalTee(target), LocalSet(target)]
    if kind == "store":
        addr = _expr(rng, 1) + [Const(I32, _ADDR_MASK), Binop(I32, "and")]
        return addr + _expr(rng, 1) + [StoreI(I32)]
    if kind == "global_set":
        return _expr(rng, 1) + [GlobalSet(rng.randrange(2))]
    if kind == "br_if":
        return _expr(rng, 1) + [WBrIf(rng.choice(targets))]
    if kind == "br_table":
        # Wrap in a fresh block so the table always has an in-range target and
        # the statement's net stack effect stays zero on the fallthrough path.
        inner_targets = [0] + [d + 1 for d in targets]
        depths = tuple(rng.choice(inner_targets) for _ in range(rng.randint(1, 3)))
        default = rng.choice(inner_targets)
        return [WBlock(EMPTY, tuple(
            _expr(rng, 1) + [WBrTable(depths, default)]
        ))]
    if kind == "if":
        then_body = _stmts(rng, depth - 1, loop_nesting, labels + (False,))
        else_body = _stmts(rng, depth - 1, loop_nesting, labels + (False,)) if rng.random() < 0.5 else []
        return _expr(rng, 1) + [WIf(EMPTY, tuple(then_body), tuple(else_body))]
    if kind == "block":
        inner = _stmts(rng, depth - 1, loop_nesting, labels + (False,))
        if rng.random() < 0.3:
            # Optional escape to any enclosing non-loop label (the rest of the
            # block is then unreachable).
            inner = inner + [WBr(rng.choice([0] + [d + 1 for d in targets]))]
        return [WBlock(EMPTY, tuple(inner))]
    assert kind == "loop"
    counter = 2 + loop_nesting  # dedicated counter local per nesting level
    iterations = rng.randint(1, 4)
    body = _stmts(rng, depth - 1, loop_nesting + 1, labels + (True,))
    loop = WLoop(
        EMPTY,
        tuple(body)
        + (
            LocalGet(counter), Const(I32, 1), Binop(I32, "sub"), LocalSet(counter),
            LocalGet(counter), Const(I32, 0), Relop(I32, "ne"), WBrIf(0),
        ),
    )
    return [Const(I32, iterations), LocalSet(counter), loop]


def _stmts(rng: random.Random, depth: int, loop_nesting: int, labels: tuple) -> list:
    out = []
    for _ in range(rng.randint(1, 3)):
        out.extend(_stmt(rng, depth, loop_nesting, labels))
    return out


def build_structured_module(seed: int) -> WasmModule:
    """A well-typed (i32, i32) -> i32 module with memory, globals, control flow."""

    rng = random.Random(seed)
    body = _stmts(rng, depth=rng.randint(1, 3), loop_nesting=0, labels=())
    body = body + _expr(rng)
    if rng.random() < 0.3:
        body = body + [WTestop(I32)]
    function = WasmFunction(
        FT((I32, I32), (I32,)),
        (I32,) * (_N_LOCALS - 2),
        tuple(body),
        exports=("f",),
    )
    return WasmModule(
        functions=(function,),
        globals=(
            WasmGlobal(I32, True, (Const(I32, 7),)),
            WasmGlobal(I32, True, (Const(I32, 0),)),
        ),
        memory=WasmMemory(1, 1),
    )


class TestStructuredControlFlowEquivalence:
    @given(st.integers(0, 2**48), st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=120, deadline=None)
    def test_engines_agree_on_structured_modules(self, seed, x, y):
        module = build_structured_module(seed)
        validate_module(module)
        report = run_engine_cross_check(module, [("f", (x, y))])
        assert report.ok, report.format_report()

    @given(st.integers(0, 2**48), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_engines_trap_at_same_step_under_budget(self, seed, budget):
        module = build_structured_module(seed)
        validate_module(module)
        report = run_engine_cross_check(module, [("f", (3, 4))], max_steps=budget)
        assert report.ok, report.format_report()


class TestLoweredProgramEquivalence:
    """The satellite requirement: random modules from the existing generators
    executed on both engines agree on results, traps, memory, and globals."""

    @given(arith_programs(), st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=30, deadline=None)
    def test_lowered_arith_programs(self, body, x, y):
        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)
        lowered = lower_module(module)
        validate_module(lowered.wasm)
        report = run_engine_cross_check(lowered.wasm, [("f", (x, y))])
        assert report.ok, report.format_report()

    @given(stateful_programs(), st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=30, deadline=None)
    def test_lowered_stateful_programs(self, body, x, y):
        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)
        lowered = lower_module(module, config=CompileConfig(opt_level="O2"))
        validate_module(lowered.wasm)
        report = run_engine_cross_check(lowered.wasm, [("f", (x, y))])
        assert report.ok, report.format_report()
