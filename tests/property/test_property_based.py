"""Property-based tests (hypothesis) for core invariants.

These stand in for the paper's mechanized metatheory: randomized evidence for
size/qualifier algebra laws, numeric-semantics agreement between the RichWasm
and Wasm interpreters, layout consistency, and the progress/preservation
behaviour of randomly generated well-typed arithmetic programs.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.semantics import Interpreter, numerics
from repro.core.syntax import (
    Block,
    Br,
    Drop,
    Function,
    GetLocal,
    IntBinop,
    LIN,
    NumBinop,
    NumConst,
    NumType,
    NumV,
    Return,
    SetLocal,
    SizeConst,
    SizePlus,
    SizeVar,
    UNR,
    funtype,
    i32,
    i64,
    make_module,
    normalize_size,
    prod,
    size_structurally_equal,
    unit,
)
from repro.core.typing import QualContext, SizeContext, check_module, closed_size_of_type, types_equal
from repro.core.syntax.qualifiers import QualConst
from repro.core.syntax import TeeLocal
from repro.lower import layout_bytes, lower_module, lower_type
from repro.opt import optimize_module, run_differential
from repro.wasm import WasmInterpreter, validate_module
from repro.analysis.safety import check_store_invariants


# ---------------------------------------------------------------------------
# Size algebra
# ---------------------------------------------------------------------------

size_consts = st.integers(min_value=0, max_value=1 << 16).map(SizeConst)


@st.composite
def size_exprs(draw, max_depth=3):
    if max_depth == 0:
        return draw(size_consts)
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return draw(size_consts)
    if choice == 1:
        return SizeVar(draw(st.integers(0, 2)))
    return SizePlus(draw(size_exprs(max_depth=max_depth - 1)), draw(size_exprs(max_depth=max_depth - 1)))


class TestSizeAlgebra:
    @given(size_exprs(), size_exprs())
    def test_plus_is_commutative_up_to_normalization(self, a, b):
        assert size_structurally_equal(SizePlus(a, b), SizePlus(b, a))

    @given(size_exprs())
    def test_normalization_is_idempotent(self, a):
        assert size_structurally_equal(normalize_size(a), a)

    @given(size_consts, size_consts)
    def test_leq_agrees_with_integers(self, a, b):
        ctx = SizeContext()
        assert ctx.leq(a, b) == (a.value <= b.value)

    @given(size_consts, size_consts, size_consts)
    def test_leq_transitive_on_constants(self, a, b, c):
        ctx = SizeContext()
        if ctx.leq(a, b) and ctx.leq(b, c):
            assert ctx.leq(a, c)

    @given(st.integers(0, 256), st.integers(0, 256))
    def test_bounded_variable_respects_its_bound(self, bound, probe):
        ctx = SizeContext().push(upper=[SizeConst(bound)])
        if ctx.leq(SizeVar(0), SizeConst(probe)):
            assert bound <= probe


class TestQualifierAlgebra:
    quals = st.sampled_from([QualConst.UNR, QualConst.LIN])

    @given(quals, quals, quals)
    def test_leq_transitive(self, a, b, c):
        ctx = QualContext()
        if ctx.leq(a, b) and ctx.leq(b, c):
            assert ctx.leq(a, c)

    @given(quals)
    def test_leq_reflexive_and_bounded(self, a):
        ctx = QualContext()
        assert ctx.leq(a, a)
        assert ctx.leq(QualConst.UNR, a)
        assert ctx.leq(a, QualConst.LIN)

    @given(st.lists(quals, max_size=5))
    def test_join_is_upper_bound(self, qs):
        ctx = QualContext()
        joined = ctx.join(qs)
        for q in qs:
            assert ctx.leq(q, joined)


# ---------------------------------------------------------------------------
# Numeric semantics: RichWasm interpreter vs Wasm interpreter vs Python
# ---------------------------------------------------------------------------


class TestNumericSemantics:
    i32_values = st.integers(min_value=0, max_value=0xFFFFFFFF)

    @given(i32_values, i32_values)
    @settings(max_examples=60)
    def test_add_matches_modular_arithmetic(self, a, b):
        assert numerics.int_add(a, b, 32) == (a + b) % 2**32

    @given(i32_values, i32_values)
    @settings(max_examples=60)
    def test_signed_division_truncates_toward_zero(self, a, b):
        sa, sb = numerics.to_signed(a, 32), numerics.to_signed(b, 32)
        if sb == 0 or (sa == -(2**31) and sb == -1):
            return
        expected = numerics.wrap(int(sa / sb), 32)
        assert numerics.int_div_s(a, b, 32) == expected

    @given(i32_values)
    @settings(max_examples=60)
    def test_clz_ctz_popcnt_consistency(self, a):
        assert numerics.int_popcnt(a, 32) == bin(a).count("1")
        if a != 0:
            assert numerics.int_clz(a, 32) == 32 - a.bit_length()
        assert 0 <= numerics.int_ctz(a, 32) <= 32

    @given(i32_values, i32_values, st.sampled_from([IntBinop.ADD, IntBinop.SUB, IntBinop.MUL,
                                                    IntBinop.AND, IntBinop.OR, IntBinop.XOR]))
    @settings(max_examples=40, deadline=None)
    def test_interpreters_agree_on_binops(self, a, b, op):
        """The RichWasm interpreter and the lowered Wasm compute the same value."""

        body = (
            GetLocal(0), GetLocal(1), NumBinop(NumType.I32, op), Return(),
        )
        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)
        interp = Interpreter()
        idx = interp.instantiate(module)
        rw = interp.invoke_export(idx, "f", [NumV(NumType.I32, a), NumV(NumType.I32, b)]).values[0].value

        lowered = lower_module(module)
        validate_module(lowered.wasm)
        wi = WasmInterpreter()
        inst = wi.instantiate(lowered.wasm)
        wasm = wi.invoke(inst, "f", [a, b])[0]
        assert rw == wasm


# ---------------------------------------------------------------------------
# Layout consistency
# ---------------------------------------------------------------------------


@st.composite
def simple_types(draw, depth=2):
    base = st.sampled_from([unit(), i32(), i64()])
    if depth == 0:
        return draw(base)
    if draw(st.booleans()):
        return draw(base)
    components = draw(st.lists(simple_types(depth=depth - 1), min_size=1, max_size=3))
    return prod(components, UNR)


class TestLayoutConsistency:
    @given(simple_types())
    @settings(max_examples=60)
    def test_layout_bytes_match_declared_size(self, ty):
        """The Wasm byte layout never exceeds the RichWasm size bound."""

        from repro.core.syntax import eval_size

        declared_bits = eval_size(closed_size_of_type(ty))
        assert layout_bytes(lower_type(ty)) * 8 == declared_bits

    @given(simple_types(), simple_types())
    @settings(max_examples=40)
    def test_tuple_layout_is_concatenation(self, a, b):
        assert lower_type(prod([a, b], UNR)) == lower_type(a) + lower_type(b)

    @given(simple_types())
    @settings(max_examples=40)
    def test_types_equal_is_reflexive(self, ty):
        assert types_equal(ty, ty)


# ---------------------------------------------------------------------------
# Random well-typed programs: progress & preservation, and backend agreement
# ---------------------------------------------------------------------------


@st.composite
def arith_programs(draw, max_len=6):
    """A random straight-line arithmetic program over two i32 locals."""

    instrs = []
    stack_depth = 0
    length = draw(st.integers(1, max_len))
    for _ in range(length):
        if stack_depth >= 2 and draw(st.booleans()):
            instrs.append(NumBinop(NumType.I32, draw(st.sampled_from(
                [IntBinop.ADD, IntBinop.SUB, IntBinop.MUL, IntBinop.AND, IntBinop.OR, IntBinop.XOR]))))
            stack_depth -= 1
        else:
            choice = draw(st.integers(0, 2))
            if choice == 0:
                instrs.append(NumConst(NumType.I32, draw(st.integers(0, 1000))))
            else:
                instrs.append(GetLocal(choice - 1))
            stack_depth += 1
    while stack_depth > 1:
        instrs.append(NumBinop(NumType.I32, IntBinop.ADD))
        stack_depth -= 1
    instrs.append(Return())
    return tuple(instrs)


@st.composite
def stateful_programs(draw, max_len=10):
    """Random straight-line i32 programs with local reads, writes and tees —
    the access patterns the optimizer's coalescing/copy-propagation rewrite."""

    instrs = []
    stack_depth = 0
    length = draw(st.integers(2, max_len))
    ops = [IntBinop.ADD, IntBinop.SUB, IntBinop.MUL, IntBinop.AND, IntBinop.OR, IntBinop.XOR]
    for _ in range(length):
        options = ["const", "get"]
        if stack_depth >= 2:
            options.append("binop")
        if stack_depth >= 1:
            options.extend(["set", "tee"])
        choice = draw(st.sampled_from(options))
        if choice == "binop":
            instrs.append(NumBinop(NumType.I32, draw(st.sampled_from(ops))))
            stack_depth -= 1
        elif choice == "set":
            instrs.append(SetLocal(draw(st.integers(0, 1))))
            stack_depth -= 1
        elif choice == "tee":
            instrs.append(TeeLocal(draw(st.integers(0, 1))))
        elif choice == "const":
            instrs.append(NumConst(NumType.I32, draw(st.integers(0, 0xFFFFFFFF))))
            stack_depth += 1
        else:
            instrs.append(GetLocal(draw(st.integers(0, 1))))
            stack_depth += 1
    while stack_depth > 1:
        instrs.append(NumBinop(NumType.I32, IntBinop.ADD))
        stack_depth -= 1
    if stack_depth == 0:
        instrs.append(GetLocal(0))
    instrs.append(Return())
    return tuple(instrs)


class TestOptimizerDifferential:
    """Differential correctness of repro.opt: for every compiled module the
    optimized and unoptimized Wasm produce identical interpreter results."""

    @given(arith_programs(), st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=30, deadline=None)
    def test_optimizer_preserves_arith_program_results(self, body, x, y):
        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)
        lowered = lower_module(module)
        result = optimize_module(lowered.wasm)
        report = run_differential(lowered.wasm, result.module, [("f", (x, y))])
        assert report.ok, report.format_report()

    @given(stateful_programs(), st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=30, deadline=None)
    def test_optimizer_preserves_local_store_semantics(self, body, x, y):
        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)
        lowered = lower_module(module)
        result = optimize_module(lowered.wasm)
        assert result.instructions_after <= result.instructions_before
        report = run_differential(lowered.wasm, result.module, [("f", (x, y))])
        assert report.ok, report.format_report()


class TestRandomProgramSafety:
    @given(arith_programs(), st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_well_typed_programs_do_not_get_stuck(self, body, x, y):
        """Progress/preservation, empirically: type-checked programs run to
        completion and both backends agree on the result."""

        module = make_module(functions=[
            Function(funtype([i32(), i32()], [i32()]), (), body, ("f",))
        ])
        check_module(module)

        interp = Interpreter()
        idx = interp.instantiate(module)
        rw = interp.invoke_export(idx, "f", [NumV(NumType.I32, x), NumV(NumType.I32, y)]).values[0].value
        assert not check_store_invariants(interp.store)

        lowered = lower_module(module)
        validate_module(lowered.wasm)
        wi = WasmInterpreter()
        inst = wi.instantiate(lowered.wasm)
        assert wi.invoke(inst, "f", [x, y])[0] == rw

    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_allocation_chains_preserve_store_invariants(self, count):
        """Allocating and freeing a chain of linear cells keeps the store well
        formed at every step and leaks nothing."""

        body = []
        for i in range(count):
            body.extend([
                NumConst(NumType.I32, i),
                __import__("repro.core.syntax", fromlist=["StructMalloc"]).StructMalloc((SizeConst(32),), LIN),
                __import__("repro.core.syntax", fromlist=["MemUnpack"]).MemUnpack(
                    __import__("repro.core.syntax", fromlist=["arrow"]).arrow([], []), (),
                    (__import__("repro.core.syntax", fromlist=["StructFree"]).StructFree(),),
                ),
            ])
        body.append(NumConst(NumType.I32, 0))
        body.append(Return())
        module = make_module(functions=[
            Function(funtype([], [i32()]), (), tuple(body), ("f",))
        ])
        check_module(module)
        violations = []
        interp = Interpreter(on_step=lambda _i, store: violations.extend(check_store_invariants(store)))
        idx = interp.instantiate(module)
        interp.invoke_export(idx, "f")
        assert violations == []
        assert interp.store.stats()["linear_live"] == 0
