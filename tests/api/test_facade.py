"""repro.api.compile / lower / serve: frontends, caching, diagnostics."""

import pytest

from repro import api
from repro.api import (
    CompileConfig,
    ConfigError,
    Diagnostics,
    Frontend,
    available_frontends,
    detect_frontend,
    register_frontend,
    resolve_frontend,
)
from repro.core.typing.errors import LinkError
from repro.ffi import Program, counter_program
from repro.l3 import (
    L3Function, LBinOp, LFree, LInt, LIntLit, LLet, LLetPair, LNew, LSwap, LVar, l3_module,
)
from repro.lower import LoweredModule
from repro.ml import BinOp, IntLit, MLFunction, TInt, Var, ml_module
from repro.runtime import CompiledProgram, ModuleCache
from repro.wasm.interpreter import WasmTrap


def ml_source():
    return ml_module("mlmod", functions=[
        MLFunction("double", "x", TInt(), TInt(), BinOp("*", Var("x"), IntLit(2))),
    ])


def l3_source():
    return l3_module("l3mod", functions=[
        L3Function("churn", "x", LInt(), LInt(),
                   LLet("o", LNew(LVar("x")),
                        LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                 LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
    ])


class TestFrontendRegistry:
    def test_builtin_frontends(self):
        assert available_frontends() == ("l3", "ml", "richwasm")

    def test_detection_by_source_type(self):
        assert detect_frontend(ml_source()).name == "ml"
        assert detect_frontend(l3_source()).name == "l3"
        assert detect_frontend(counter_program().ml).name == "richwasm"

    def test_unknown_source_type_names_frontends(self):
        with pytest.raises(ConfigError, match=r"l3, ml, richwasm"):
            detect_frontend(42)

    def test_unknown_frontend_name_names_frontends(self):
        with pytest.raises(ConfigError, match=r"l3, ml, richwasm"):
            resolve_frontend("rust")

    def test_duplicate_registration_rejected(self):
        class FakeML(Frontend):
            name = "ml"

            def source_types(self):
                return ()

            def compile_source(self, source, config):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ConfigError, match="already registered"):
            register_frontend(FakeML())


class TestCompile:
    def test_mixed_frontends_link_into_one_program(self):
        compiled = api.compile({"m": ml_source(), "c": l3_source()}, cache=ModuleCache())
        assert isinstance(compiled, CompiledProgram)
        assert compiled.diagnostics.frontends == {"m": "ml", "c": "l3"}
        service = api.serve(compiled)
        assert service.call("double", [21]) == [42]
        assert service.call("churn", [9]) == [10]

    def test_explicit_frontend_pairs(self):
        compiled = api.compile({"m": ("ml", ml_source())}, cache=ModuleCache())
        assert compiled.diagnostics.frontends == {"m": "ml"}

    def test_single_source_auto_named(self):
        compiled = api.compile(ml_source(), cache=ModuleCache())
        assert compiled.diagnostics.frontends == {"mlmod": "ml"}
        assert api.serve(compiled).call("double", [4]) == [8]

    def test_scenario_builder_and_program_sources(self):
        cache = ModuleCache()
        from_builder = api.compile(counter_program, cache=cache)
        from_scenario = api.compile(counter_program(), cache=cache)
        from_program = api.compile(Program(counter_program().modules()), cache=cache)
        assert from_builder is from_scenario is from_program  # one content key

    def test_prelinked_richwasm_module_passes_through(self):
        linked = Program(counter_program().modules()).link()
        compiled = api.compile(linked, cache=ModuleCache())
        # No namespacing on top of the already-linked exports.
        assert "client.client_init" in compiled.wasm.exported_functions()

    def test_config_key_separates_levels_and_shares_across_engines(self):
        cache = ModuleCache()
        o0 = api.compile(counter_program, "O0", cache=cache)
        o2 = api.compile(counter_program, "O2", cache=cache)
        assert o0 is not o2 and o0.key != o2.key
        tree = api.compile(counter_program, CompileConfig(engine="tree"), cache=cache)
        assert tree.key == o0.key  # engine is bookkeeping, not content
        assert tree.wasm is o0.wasm
        assert tree.engine == "tree" and o0.engine is None

    def test_cache_policy_none_compiles_fresh(self):
        first = api.compile(counter_program, CompileConfig(cache="none"))
        second = api.compile(counter_program, CompileConfig(cache="none"))
        assert first is not second
        # Off the cache paths the program hash is lazy: nothing is stored
        # until .key is actually read, and then both computes agree.
        assert first.cached_key is None and first.diagnostics.key is None
        assert first.key == second.key == first.cached_key
        assert first.diagnostics.cache["lower"] == "bypass"

    def test_program_cache_hit_refreshes_execution_bookkeeping(self):
        # An engine-matching hit must not silently drop the later caller's
        # execution settings (e.g. its step budget).
        cache = ModuleCache()
        first = api.compile(counter_program, CompileConfig(opt_level="O2"), cache=cache)
        budgeted = api.compile(
            counter_program, CompileConfig(opt_level="O2", max_steps=10), cache=cache
        )
        assert budgeted.config.max_steps == 10
        assert budgeted.wasm is first.wasm and budgeted.key == first.key
        with pytest.raises(WasmTrap, match="step budget exhausted"):
            api.serve(budgeted).call("client_init", [1])

    def test_cache_policy_shared_hits_across_calls(self):
        config = CompileConfig(opt_level="O1")
        first = api.compile(counter_program, config)
        second = api.compile(counter_program, config)
        assert second is first
        assert second.diagnostics.cache["program"] == "hit"

    def test_overrides_merge_into_config(self):
        compiled = api.compile(counter_program, opt_level="O1", engine="tree", cache=ModuleCache())
        assert compiled.config.opt_level == "O1" and compiled.engine == "tree"

    def test_bad_cache_argument(self):
        with pytest.raises(ConfigError, match="ModuleCache"):
            api.compile(counter_program, cache=object())
        compiled = api.compile(counter_program, cache=ModuleCache())
        with pytest.raises(ConfigError, match="ModuleCache"):
            api.serve(compiled, cache="shared")

    def test_codegen_entry_points_honor_cache_policy(self):
        # compile_ml_module/compile_l3_module resolve the config's cache
        # policy exactly like the facade: "private" memoizes within...
        # nothing (fresh per call), "shared" lands in the default cache.
        from repro.ml import compile_ml_module
        from repro.runtime import default_cache

        cache = default_cache()
        config = CompileConfig(opt_level="O1", memory_pages=7)  # cache="shared"
        before = cache.stats["lower"].lookups
        first = compile_ml_module(ml_source(), config=config)
        second = compile_ml_module(ml_source(), config=config)
        assert cache.stats["lower"].lookups == before + 2
        assert first.wasm is second.wasm  # payload shared via the process cache
        direct = compile_ml_module(ml_source(), config=config.replace(cache="none"))
        assert cache.stats["lower"].lookups == before + 2
        assert direct.wasm == first.wasm


class TestDiagnostics:
    def test_stages_cache_events_and_pass_stats(self):
        cache = ModuleCache()
        compiled = api.compile(counter_program, "O2", cache=cache)
        diag = compiled.diagnostics
        assert isinstance(diag, Diagnostics)
        assert [t.stage for t in diag.stages] == [
            "frontend", "link", "typecheck", "lower", "decode"
        ]
        # The linked module was type-checked (memoized) inside the link
        # stage, so the explicit typecheck stage reports a cache hit.
        assert diag.cache == {
            "link": "miss",
            "typecheck": "hit",
            "program": "miss",
            "lower": "miss",
            "decode": "miss",
        }
        assert diag.key == compiled.key
        assert diag.total_seconds >= diag.seconds("lower") > 0
        assert {s.name for s in diag.pass_stats} == set(compiled.config.pass_names())
        assert not diag.cache_hit
        again = api.compile(counter_program, "O2", cache=cache)
        assert again.diagnostics.cache_hit
        assert "compile:" in diag.format_report()

    def test_lower_artifact_carries_diagnostics(self):
        lowered = api.lower(ml_source(), "O1", cache=None)
        assert isinstance(lowered, LoweredModule)
        assert lowered.diagnostics.frontends == {"mlmod": "ml"}
        assert lowered.optimization is not None
        assert lowered.diagnostics.optimization is lowered.optimization

    def test_typecheck_stage_observable_through_facade(self):
        # Cached pipeline: linking routes every module check through the
        # cache's memoized typecheck stage, so the stats and the per-call
        # Diagnostics stay observable through the facade.
        cache = ModuleCache()
        compiled = api.compile(counter_program, cache=cache)
        assert compiled.diagnostics.cache["typecheck"] == "hit"
        assert compiled.diagnostics.seconds("typecheck") >= 0
        assert "typecheck" in cache.stats
        assert cache.stats["typecheck"].misses >= 2  # inputs + linked result
        again = api.compile(counter_program, cache=cache)
        assert again.diagnostics.cache["typecheck"] == "hit"
        # Off-cache pipeline: lowering drives the checker itself, so the
        # stage is recorded as a bypass rather than re-checked standalone.
        direct = api.compile(counter_program, CompileConfig(cache="none"))
        assert direct.diagnostics.cache["typecheck"] == "bypass"
        # A pre-linked Module the cache has never seen is not checked twice
        # (lowering checks it): first sight bypasses, later sights do not
        # suddenly become standalone misses either.
        linked = cache.link(counter_program().modules(), name="prelinked")
        fresh = ModuleCache()
        cold = api.compile(linked, cache=fresh)
        assert cold.diagnostics.cache["typecheck"] == "bypass"
        assert fresh.stats["typecheck"].lookups == 0


class TestServe:
    def test_session_and_isolation(self):
        service = api.serve(counter_program, "O2", cache=ModuleCache())
        script = [("client_init", (5,))] + [("client_tick", ())] * 3 + [("client_total", ())]
        first = service.session(script)
        second = service.session(script)
        assert first.ok and second.ok
        assert first.values[-1] == second.values[-1] == [8]
        assert first.steps == second.steps  # pooled resets are exact

    def test_call_raises_wasm_trap(self):
        service = api.serve(counter_program, cache=ModuleCache(), max_steps=3)
        with pytest.raises(WasmTrap, match="step budget exhausted"):
            service.call("client_init", [1])

    def test_export_suffix_resolution(self):
        service = api.serve(counter_program, cache=ModuleCache())
        # Exact names (bare or qualified) win; suffix matching kicks in only
        # for names the export table does not contain verbatim.
        assert service.resolve("client_total") == "client_total"
        assert service.resolve("client.client_total") == "client.client_total"
        from repro.api import resolve_export

        assert resolve_export(("client.client_total",), "client_total") == "client.client_total"

    def test_unknown_export_raises_link_error_listing(self):
        service = api.serve(counter_program, cache=ModuleCache())
        with pytest.raises(LinkError, match="client.client_init"):
            service.call("nope")

    def test_ambiguous_export_raises_link_error_naming_candidates(self):
        service = api.serve(
            {"a": ml_source(), "b": ("ml", ml_source())}, cache=ModuleCache(), check_links=True
        )
        with pytest.raises(LinkError, match=r"a\.double.*b\.double"):
            service.call("double", [1])

    def test_serve_rejects_conflicting_compile_relevant_config(self):
        compiled = api.compile(counter_program, "O2", cache=ModuleCache())
        with pytest.raises(ConfigError, match="conflict"):
            api.serve(compiled, CompileConfig(opt_level="O0"))
        # Execution-bookkeeping overrides are fine: same compiled content.
        service = api.serve(compiled, max_steps=5000, pool_size=2)
        assert service.config.max_steps == 5000

    def test_serve_from_sources_respects_pool_size_and_engine(self):
        service = api.serve(counter_program, CompileConfig(engine="tree", pool_size=2),
                            cache=ModuleCache())
        assert service.pool.engine == "tree"
        assert service.pool.max_size == 2
        report = service.run([("client_init", (1,)), ("client_init", (2,))])
        assert report.ok_count == 2

    def test_stats_are_structured(self):
        cache = ModuleCache()
        service = api.serve(counter_program, cache=cache)
        service.call("client_init", [0])
        stats = service.stats()
        assert stats.pool.acquired == 1
        assert stats.cache["lower"].misses == 1
