"""The pre-facade keyword surface: still works, warns exactly once per call."""

import warnings

import pytest

from repro import api
from repro.api import CompileConfig, ConfigError
from repro.ffi import Program, counter_program
from repro.lower import LoweredModule, lower_module
from repro.ml import BinOp, IntLit, MLFunction, TInt, Var, compile_ml_module, ml_module
from repro.l3 import compile_l3_module
from repro.runtime import CompiledProgram, ModuleCache, scenario_service
from repro.wasm import TreeWalkingEngine


def ml_source():
    return ml_module("work", functions=[
        MLFunction("double", "x", TInt(), TInt(), BinOp("*", Var("x"), IntLit(2))),
    ])


def deprecation_warnings(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


def assert_warns_once(fn, match):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = fn()
    caught = deprecation_warnings(record)
    assert len(caught) == 1, [str(w.message) for w in caught]
    assert match in str(caught[0].message)
    return result


class TestOneWarningPerCall:
    def test_program_lower(self):
        program = Program(counter_program().modules())
        lowered = assert_warns_once(lambda: program.lower(optimize=True), "Program.lower")
        assert isinstance(lowered, LoweredModule) and lowered.optimization is not None

    def test_program_lower_multiple_kwargs_still_one_warning(self):
        program = Program(counter_program().modules())
        lowered = assert_warns_once(
            lambda: program.lower(optimize=True, memory_pages=8, engine="tree"),
            "memory_pages, optimize",
        )
        assert lowered.engine == "tree"

    def test_program_compile(self):
        program = Program(counter_program().modules())
        compiled = assert_warns_once(
            lambda: program.compile(engine=TreeWalkingEngine()), "Program.compile"
        )
        assert isinstance(compiled, CompiledProgram) and compiled.engine == "tree"

    def test_program_instantiate_wasm(self):
        program = Program(counter_program().modules())
        instance = assert_warns_once(
            lambda: program.instantiate_wasm(memory_pages=8), "Program.instantiate_wasm"
        )
        instance.invoke("client", "client_init", [2])
        assert instance.invoke("client", "client_total", []) == [2]

    def test_compile_ml_module(self):
        lowered = assert_warns_once(
            lambda: compile_ml_module(ml_source(), optimize=True), "compile_ml_module"
        )
        assert isinstance(lowered, LoweredModule)

    def test_compile_l3_module(self):
        from repro.l3 import (
            L3Function, LBinOp, LFree, LInt, LIntLit, LLet, LLetPair, LNew, LSwap, LVar, l3_module,
        )

        module = l3_module("work", functions=[
            L3Function("churn", "x", LInt(), LInt(),
                       LLet("o", LNew(LVar("x")),
                            LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                     LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
        ])
        lowered = assert_warns_once(
            lambda: compile_l3_module(module, engine="flat"), "compile_l3_module"
        )
        assert isinstance(lowered, LoweredModule) and lowered.engine == "flat"

    def test_lower_module(self):
        richwasm = compile_ml_module(ml_source())
        lowered = assert_warns_once(lambda: lower_module(richwasm, optimize=True), "lower_module")
        assert lowered.optimization is not None

    def test_scenario_service(self):
        runner = assert_warns_once(
            lambda: scenario_service(counter_program, cache=ModuleCache(), engine="tree"),
            "scenario_service",
        )
        assert runner.pool.engine == "tree"


class TestShimEquivalence:
    def test_optimize_true_matches_o2_config(self):
        program = Program(counter_program().modules())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = program.lower(optimize=True)
        modern = program.lower(config=CompileConfig(opt_level="O2", cache="none"))
        assert legacy.wasm == modern.wasm  # bit-identical artifacts

    def test_bare_calls_do_not_warn(self):
        program = Program(counter_program().modules())
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            program.lower()
            program.compile()
            compile_ml_module(ml_source())
            compile_ml_module(ml_source(), lower=True)
            scenario_service(counter_program, cache=ModuleCache())
        assert deprecation_warnings(record) == []

    def test_config_plus_legacy_kwargs_is_an_error(self):
        program = Program(counter_program().modules())
        with pytest.raises(ConfigError, match="not both"):
            program.lower(config=CompileConfig(), optimize=True)
        with pytest.raises(ConfigError, match="not both"):
            lower_module(counter_program().ml, config=CompileConfig(), memory_pages=8)

    def test_legacy_and_facade_share_one_cache_keyspace(self):
        cache = ModuleCache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = Program(counter_program().modules()).compile(optimize=True, cache=cache)
        modern = api.compile(counter_program, "O2", cache=cache)
        # Same content key, one compiled payload (the returned wrappers may
        # differ: hits refresh per-caller execution bookkeeping).
        assert modern.key == legacy.key
        assert modern.wasm is legacy.wasm
        assert cache.stats["lower"].misses == 1
