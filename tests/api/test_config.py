"""CompileConfig: validation, normalization, hash stability, opt pipelines."""

import pytest

from repro.api import CACHE_POLICIES, CompileConfig, ConfigError
from repro.l3 import compile_l3_module
from repro.lower import lower_module
from repro.ml import compile_ml_module
from repro.opt import pipeline_names, pipeline_passes, run_differential, run_engine_cross_check
from repro.wasm import TreeWalkingEngine, available_engines, create_engine

from bench_pipelines import l3_workload, ml_workload


class TestValidation:
    def test_defaults_validate(self):
        config = CompileConfig()
        assert config.validate() is config
        assert config.opt_level == "O0" and not config.optimize

    def test_unknown_opt_level_names_registered_levels(self):
        with pytest.raises(ConfigError, match=r"O0, O1, O2"):
            CompileConfig(opt_level="O9").validate()

    def test_unknown_engine_names_registered_engines(self):
        with pytest.raises(ConfigError, match=r"compiled, flat, tree"):
            CompileConfig(engine="bogus").validate()

    def test_create_engine_rejects_unknown_names_listing_registered(self):
        with pytest.raises(ValueError, match=r"compiled, flat, tree"):
            create_engine("bogus")
        assert available_engines() == ("compiled", "flat", "tree")

    def test_unknown_cache_policy(self):
        with pytest.raises(ConfigError, match=", ".join(CACHE_POLICIES)):
            CompileConfig(cache="write-through").validate()

    @pytest.mark.parametrize("field, value", [
        ("memory_pages", 0),
        ("memory_pages", "4"),
        ("memory_pages", True),
        ("max_steps", 0),
        ("max_steps", 1.5),
        ("pool_size", 0),
        ("link_name", ""),
        ("validate_wasm", 1),
        ("workers", 0),
        ("workers", 1.5),
        ("cache_dir", ""),
        ("cache_dir", 7),
        ("disk_cache_bytes", 0),
        ("disk_cache_bytes", "big"),
    ])
    def test_bad_field_values(self, field, value):
        with pytest.raises(ConfigError, match=field):
            CompileConfig(**{field: value}).validate()

    def test_config_error_is_a_value_error(self):
        assert issubclass(ConfigError, ValueError)


class TestNormalization:
    def test_cache_dir_accepts_path_objects(self, tmp_path):
        assert CompileConfig(cache_dir=tmp_path).cache_dir == str(tmp_path)

    def test_int_and_lowercase_levels_normalize(self):
        assert CompileConfig(opt_level=1).opt_level == "O1"
        assert CompileConfig(opt_level="o2").opt_level == "O2"
        assert CompileConfig(opt_level=" O0 ").opt_level == "O0"

    def test_engine_instances_reduce_to_names(self):
        config = CompileConfig(engine=TreeWalkingEngine()).validate()
        assert config.engine == "tree"

    def test_of_coercions(self):
        assert CompileConfig.of(None) == CompileConfig().validate()
        assert CompileConfig.of("O2").opt_level == "O2"
        assert CompileConfig.of(2).opt_level == "O2"
        assert CompileConfig.of({"opt_level": "O1", "memory_pages": 8}).memory_pages == 8
        base = CompileConfig(opt_level="O1")
        assert CompileConfig.of(base) is base
        assert CompileConfig.of(base, engine="tree").engine == "tree"
        with pytest.raises(ConfigError):
            CompileConfig.of(object())

    def test_replace_validates(self):
        config = CompileConfig()
        assert config.replace(opt_level="O1").opt_level == "O1"
        with pytest.raises(ConfigError):
            config.replace(opt_level="O7")


class TestContentKey:
    def test_stable_across_equal_configs(self):
        assert CompileConfig(opt_level="O2").content_key() == CompileConfig(opt_level=2).content_key()

    def test_compile_relevant_fields_change_the_key(self):
        base = CompileConfig().content_key()
        assert CompileConfig(opt_level="O1").content_key() != base
        assert CompileConfig(opt_level="O2").content_key() != CompileConfig(opt_level="O1").content_key()
        assert CompileConfig(memory_pages=8).content_key() != base
        assert CompileConfig(link_name="other").content_key() != base

    def test_bookkeeping_fields_do_not_change_the_key(self):
        # One compiled payload serves every engine / budget / cache policy.
        base = CompileConfig().content_key()
        assert CompileConfig(engine="tree").content_key() == base
        assert CompileConfig(max_steps=10).content_key() == base
        assert CompileConfig(cache="none").content_key() == base
        assert CompileConfig(pool_size=2).content_key() == base
        assert CompileConfig(validate_wasm=False).content_key() == base
        assert CompileConfig(check_links=False).content_key() == base
        # Serving topology and cache placement are bookkeeping too: the
        # same artifact is shared across workers and disk directories.
        assert CompileConfig(workers=4).content_key() == base
        assert CompileConfig(cache_dir="/tmp/x", disk_cache_bytes=10).content_key() == base


class TestPipelines:
    def test_registered_levels(self):
        assert pipeline_names() == ("O0", "O1", "O2")
        assert pipeline_passes("O0") == []
        o1 = [p.name for p in pipeline_passes("O1")]
        o2 = [p.name for p in pipeline_passes("O2")]
        assert set(o1) < set(o2)  # O1 is a strict subset of the full pipeline

    def test_unknown_level_lists_registered(self):
        with pytest.raises(ValueError, match=r"O0, O1, O2"):
            pipeline_passes("Os")

    def test_config_passes_match_pipeline(self):
        assert CompileConfig(opt_level="O0").passes() is None
        assert CompileConfig(opt_level="O0").pass_names() == ()
        assert CompileConfig(opt_level="O2").pass_names() == tuple(
            p.name for p in pipeline_passes("O2")
        )

    @pytest.mark.parametrize("level", ["O1", "O2"])
    @pytest.mark.parametrize("workload, export, args", [
        ("ml", "pipeline", [(21,), (0,), (100,), (7,)]),
        ("l3", "churn", [(9,), (0,), (1000,)]),
    ])
    def test_levels_bit_identical_on_both_engines(self, level, workload, export, args):
        """Acceptance: every level's artifact is differentially verified
        against the unoptimized twin on both engines."""

        richwasm = (
            compile_ml_module(ml_workload()) if workload == "ml" else compile_l3_module(l3_workload())
        )
        baseline = lower_module(richwasm, config=CompileConfig(opt_level="O0"))
        candidate = lower_module(richwasm, config=CompileConfig(opt_level=level))
        calls = [(export, a) for a in args]
        for engine in ("tree", "flat"):
            report = run_differential(baseline.wasm, candidate.wasm, calls, engine=engine)
            assert report.ok, f"{level}/{engine}:\n{report.format_report()}"
        cross = run_engine_cross_check(candidate.wasm, calls)
        assert cross.ok, cross.format_report()
