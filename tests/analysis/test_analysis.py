"""Tests for the analysis utilities: metrics and the safety harness."""

import pytest

from repro.analysis import (
    SafetyHarness,
    check_store_invariants,
    count_typing_rules,
    format_report,
    gather_metrics,
)
from repro.core.semantics import Store
from repro.core.syntax import (
    CapV,
    MemKind,
    NumType,
    NumV,
    RefV,
    StructHV,
    UnitV,
    lin_loc,
)
from repro.ffi import counter_program, fig3_programs
from repro.ffi.link import link_modules


class TestMetrics:
    def test_categories_are_nonempty(self):
        categories = gather_metrics()
        by_name = {c.name: c for c in categories}
        spec = next(c for n, c in by_name.items() if n.startswith("specification"))
        systems = next(c for n, c in by_name.items() if n.startswith("systems"))
        assert spec.total_lines > 1000
        assert systems.total_lines > 1000
        assert spec.code_lines < spec.total_lines

    def test_rule_counts(self):
        rules = count_typing_rules()
        assert rules["instruction typing rules"] > 40
        assert rules["reduction rules"] > 40

    def test_report_formatting(self):
        report = format_report(gather_metrics())
        assert "TOTAL" in report
        assert "instruction typing rules" in report


class TestStoreInvariants:
    def test_clean_store(self):
        assert check_store_invariants(Store()) == []

    def test_dangling_reference_detected(self):
        store = Store()
        inner = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 1),)), 32)
        store.allocate(MemKind.UNR, StructHV((RefV(inner),)), 32)
        store.free(inner)
        violations = check_store_invariants(store)
        assert any("dangling" in v for v in violations)

    def test_capability_in_gc_memory_detected(self):
        store = Store()
        store.allocate(MemKind.UNR, StructHV((CapV(),)), 32)
        violations = check_store_invariants(store)
        assert any("capability" in v for v in violations)

    def test_doubly_owned_linear_cell_detected(self):
        store = Store()
        linear = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 1),)), 32)
        store.allocate(MemKind.UNR, StructHV((RefV(linear),)), 32)
        store.allocate(MemKind.UNR, StructHV((RefV(linear),)), 32)
        violations = check_store_invariants(store)
        assert any("two GC cells" in v for v in violations)


class TestSafetyHarness:
    def test_counter_program_is_safe(self):
        linked = link_modules(counter_program().modules())
        harness = SafetyHarness()
        report = harness.run_module(
            linked,
            [
                ("client.client_init", [NumV(NumType.I32, 0)]),
                ("client.client_tick", [UnitV()]),
                ("client.client_tick", [UnitV()]),
                ("client.client_total", [UnitV()]),
            ],
        )
        assert report.ok
        assert report.steps > 0
        assert report.store_checks > 0

    def test_traps_count_as_progress(self):
        # Reading an empty ref_to_lin twice traps: that is progress, not a
        # stuck state, so the report stays OK but records the trap.
        _, safe = fig3_programs()
        linked = link_modules(safe.modules())
        harness = SafetyHarness()
        report = harness.run_module(
            linked,
            [
                ("client.store", [NumV(NumType.I32, 1)]),
                ("client.take", [UnitV()]),
                ("client.take", [UnitV()]),
            ],
        )
        assert report.traps == 1
        assert report.ok
