"""Unit tests for RichWasm types: construction, traversal, substitution."""

import pytest

from repro.core.syntax import (
    LIN,
    UNR,
    ArrowType,
    CapT,
    ExLocT,
    FunType,
    LocIndex,
    LocQuant,
    NumType,
    OwnT,
    PretypeIndex,
    Privilege,
    ProdT,
    QualIndex,
    QualQuant,
    RefT,
    SizeConst,
    SizeIndex,
    SizeQuant,
    StructHT,
    Subst,
    Type,
    TypeQuant,
    UnitT,
    VarT,
    VariantHT,
    arrow,
    cap,
    funtype,
    heaptype_contains_cap,
    i32,
    i64,
    instantiate_funtype,
    lin_loc,
    own,
    prod,
    ptr,
    ref,
    struct_ht,
    subst_type,
    type_contains_cap,
    unfold_rec,
    unit,
    unr_loc,
    var,
    variant_ht,
)
from repro.core.syntax.locations import LocVar
from repro.core.syntax.types import RecT, Shift, shift_type, unpack_exloc


def linear_ref(address=0):
    return ref(Privilege.RW, lin_loc(address), struct_ht([(i32(), SizeConst(32))]), LIN)


class TestTypeConstruction:
    def test_numeric_types(self):
        assert i32().pretype.numtype is NumType.I32
        assert i64().qual is UNR
        assert i32(LIN).qual is LIN

    def test_numtype_widths(self):
        assert NumType.I32.bit_width == 32
        assert NumType.F64.bit_width == 64
        assert NumType.UI64.is_integer and not NumType.UI64.is_signed
        assert NumType.F32.is_float

    def test_prod(self):
        pair = prod([i32(), i64()], LIN)
        assert isinstance(pair.pretype, ProdT)
        assert len(pair.pretype.components) == 2

    def test_struct_heaptype_accessors(self):
        ht = struct_ht([(i32(), SizeConst(32)), (i64(), SizeConst(64))])
        assert ht.field_types == (i32(), i64())
        assert ht.field_sizes == (SizeConst(32), SizeConst(64))

    def test_variant_heaptype(self):
        ht = variant_ht([unit(), i32()])
        assert len(ht.cases) == 2

    def test_with_qual(self):
        assert i32().with_qual(LIN).qual is LIN

    def test_var_negative_index_rejected(self):
        with pytest.raises(ValueError):
            VarT(-1)


class TestCapabilityDetection:
    def test_bare_cap_detected(self):
        assert type_contains_cap(cap(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))])))
        assert type_contains_cap(own(lin_loc(0)))

    def test_refs_do_not_count_as_caps(self):
        assert not type_contains_cap(linear_ref())
        assert not type_contains_cap(ptr(lin_loc(0)))

    def test_nested_cap_inside_tuple(self):
        nested = prod([i32(), own(lin_loc(1), LIN)], LIN)
        assert type_contains_cap(nested)

    def test_heaptype_contains_cap(self):
        ht = struct_ht([(own(lin_loc(0), LIN), SizeConst(0))])
        assert heaptype_contains_cap(ht)
        assert not heaptype_contains_cap(struct_ht([(i32(), SizeConst(32))]))


class TestSubstitutionAndShifting:
    def test_unfold_rec_substitutes_recursive_occurrence(self):
        # rec α. (prod i32 α)  — unfolding exposes the recursive type inside.
        body = prod([i32(), var(0, UNR)], UNR)
        rec_pre = RecT(UNR, body)
        unfolded = unfold_rec(rec_pre, UNR)
        assert isinstance(unfolded.pretype, ProdT)
        assert isinstance(unfolded.pretype.components[1].pretype, RecT)

    def test_unpack_exloc(self):
        packaged = ExLocT(Type(RefT(Privilege.RW, LocVar(0), struct_ht([(i32(), SizeConst(32))])), LIN))
        opened = unpack_exloc(packaged, lin_loc(9))
        assert opened.pretype.loc == lin_loc(9)

    def test_subst_type_variable(self):
        ty = var(0, UNR)
        result = subst_type(ty, Subst(types={0: UnitT()}))
        assert isinstance(result.pretype, UnitT)

    def test_subst_does_not_capture_under_exloc(self):
        # ∃ρ. ptr ρ — substituting location 0 from outside must not touch the
        # bound variable (index 0 refers to the binder inside the body).
        ty = Type(ExLocT(ptr(LocVar(0))), UNR)
        result = subst_type(ty, Subst(locs={0: lin_loc(4)}))
        assert result.pretype.body.pretype.loc == LocVar(0)

    def test_shift_type_under_binder(self):
        ty = Type(ExLocT(prod([ptr(LocVar(0)), ptr(LocVar(1))], UNR)), UNR)
        shifted = shift_type(ty, Shift(locs=2))
        inner = shifted.pretype.body.pretype.components
        assert inner[0].pretype.loc == LocVar(0)  # bound: untouched
        assert inner[1].pretype.loc == LocVar(3)  # free: shifted past the binder


class TestFunctionTypes:
    def test_instantiate_monomorphic(self):
        ft = funtype([i32()], [i64()])
        result = instantiate_funtype(ft, [])
        assert result.params == (i32(),)
        assert result.results == (i64(),)

    def test_instantiate_size_and_qual(self):
        ft = FunType(
            (SizeQuant(), QualQuant()),
            arrow([var(0, UNR)], [i32()]),
        )
        # index order matches quantifier order: size first, then qualifier.
        inst = instantiate_funtype(ft, [SizeIndex(SizeConst(64)), QualIndex(LIN)])
        assert inst.params == (var(0, UNR),)  # no pretype quantifier to substitute

    def test_instantiate_pretype(self):
        ft = FunType(
            (TypeQuant(UNR, SizeConst(64)),),
            arrow([var(0, UNR)], [var(0, UNR)]),
        )
        inst = instantiate_funtype(ft, [PretypeIndex(UnitT())])
        assert isinstance(inst.params[0].pretype, UnitT)
        assert isinstance(inst.results[0].pretype, UnitT)

    def test_instantiate_location(self):
        ft = FunType((LocQuant(),), arrow([ptr(LocVar(0))], []))
        inst = instantiate_funtype(ft, [LocIndex(unr_loc(5))])
        assert inst.params[0].pretype.loc == unr_loc(5)

    def test_wrong_arity_rejected(self):
        ft = FunType((LocQuant(),), arrow([], []))
        with pytest.raises(ValueError):
            instantiate_funtype(ft, [])

    def test_wrong_index_kind_rejected(self):
        ft = FunType((LocQuant(),), arrow([], []))
        with pytest.raises(TypeError):
            instantiate_funtype(ft, [SizeIndex(SizeConst(1))])
