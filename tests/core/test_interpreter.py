"""Tests for the RichWasm dynamic semantics: interpreter, store, GC."""

import pytest

from repro.core.semantics import GcPolicy, Interpreter, Store, Trap, run_gc, value_size
from repro.core.semantics.store import MemoryFault
from repro.core.syntax import (
    ArrayGet,
    ArrayMalloc,
    Block,
    Br,
    BrIf,
    Call,
    Drop,
    Function,
    GetGlobal,
    GetLocal,
    Global,
    If,
    IntBinop,
    IntRelop,
    LIN,
    Loop,
    MemKind,
    MemUnpack,
    NumBinop,
    NumConst,
    NumRelop,
    NumType,
    NumV,
    ProdV,
    RefV,
    Return,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructHV,
    StructMalloc,
    StructSet,
    StructSwap,
    UNR,
    UnitV,
    Unreachable,
    VariantCase,
    VariantMalloc,
    arrow,
    funtype,
    i32,
    lin_loc,
    make_module,
    unit,
    unr_loc,
    variant_ht,
)
from repro.core.typing import check_module


def run_single(body, args=(), params=(), results=(i32(),), locals_sizes=(), check=True):
    module = make_module(functions=[
        Function(
            funtype=funtype(list(params), list(results)),
            locals_sizes=tuple(locals_sizes),
            body=tuple(body),
            exports=("main",),
        )
    ])
    if check:
        check_module(module)
    interp = Interpreter()
    idx = interp.instantiate(module)
    return interp.invoke_export(idx, "main", list(args)).values, interp


class TestNumerics:
    def test_add(self):
        values, _ = run_single([NumConst(NumType.I32, 40), NumConst(NumType.I32, 2),
                                NumBinop(NumType.I32, IntBinop.ADD), Return()])
        assert values[0].value == 42

    def test_sub_wraps(self):
        values, _ = run_single([NumConst(NumType.I32, 0), NumConst(NumType.I32, 1),
                                NumBinop(NumType.I32, IntBinop.SUB), Return()])
        assert values[0].value == 0xFFFFFFFF

    def test_division_by_zero_traps(self):
        with pytest.raises(Trap):
            run_single([NumConst(NumType.I32, 1), NumConst(NumType.I32, 0),
                        NumBinop(NumType.I32, IntBinop.DIV_S), Return()])

    def test_signed_comparison(self):
        values, _ = run_single([NumConst(NumType.I32, -1), NumConst(NumType.I32, 1),
                                NumRelop(NumType.I32, IntRelop.LT_S), Return()])
        assert values[0].value == 1

    def test_unsigned_comparison(self):
        values, _ = run_single([NumConst(NumType.I32, -1), NumConst(NumType.I32, 1),
                                NumRelop(NumType.I32, IntRelop.LT_U), Return()])
        assert values[0].value == 0


class TestControlFlow:
    def test_factorial_loop(self):
        body = [
            NumConst(NumType.I32, 1), SetLocal(1),
            Block(arrow([], []), (), (
                Loop(arrow([], []), (
                    GetLocal(0), NumConst(NumType.I32, 0), NumRelop(NumType.I32, IntRelop.EQ), BrIf(1),
                    GetLocal(0), GetLocal(1), NumBinop(NumType.I32, IntBinop.MUL), SetLocal(1),
                    GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                    Br(0),
                )),
            )),
            GetLocal(1), Return(),
        ]
        values, _ = run_single(body, args=[NumV(NumType.I32, 6)], params=[i32()],
                               locals_sizes=[SizeConst(32)])
        assert values[0].value == 720

    def test_if_both_branches(self):
        def make(arg):
            body = [
                GetLocal(0),
                If(arrow([], [i32()]), (), (NumConst(NumType.I32, 10),), (NumConst(NumType.I32, 20),)),
                Return(),
            ]
            values, _ = run_single(body, args=[NumV(NumType.I32, arg)], params=[i32()])
            return values[0].value
        assert make(1) == 10
        assert make(0) == 20

    def test_unreachable_traps(self):
        with pytest.raises(Trap):
            run_single([Unreachable()], results=[])

    def test_direct_call(self):
        double = Function(
            funtype=funtype([i32()], [i32()]),
            locals_sizes=(),
            body=(GetLocal(0), GetLocal(0), NumBinop(NumType.I32, IntBinop.ADD), Return()),
            name="double",
        )
        main = Function(
            funtype=funtype([i32()], [i32()]),
            locals_sizes=(),
            body=(GetLocal(0), Call(0, ()), Call(0, ()), Return()),
            exports=("main",),
        )
        module = make_module(functions=[double, main])
        check_module(module)
        interp = Interpreter()
        idx = interp.instantiate(module)
        assert interp.invoke_export(idx, "main", [NumV(NumType.I32, 3)]).values[0].value == 12


class TestHeapOperations:
    def test_struct_set_get_swap(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 5), StructSet(0),
                NumConst(NumType.I32, 9), StructSwap(0),
                NumBinop(NumType.I32, IntBinop.ADD),   # old value 5 + ... wait swap returns (ref, old)
            )),
            Return(),
        ]
        # swap leaves (ref, old=5); ADD needs two i32 — adjust: use get after set.
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 5), StructSet(0),
                StructGet(0), SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            Return(),
        ]
        values, interp = run_single(body, locals_sizes=[SizeConst(32)])
        assert values[0].value == 5
        assert interp.store.stats()["linear_live"] == 0

    def test_struct_swap_returns_old_value(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 9), StructSwap(0),
                SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            Return(),
        ]
        values, _ = run_single(body, locals_sizes=[SizeConst(32)])
        assert values[0].value == 7

    def test_variant_case_selects_branch(self):
        cases = (unit(), i32())
        def make(tag, payload_instr):
            body = [
                payload_instr,
                VariantMalloc(tag, cases, LIN),
                MemUnpack(arrow([], [i32()]), (), (
                    VariantCase(LIN, variant_ht(cases), arrow([], [i32()]), (), (
                        (Drop(), NumConst(NumType.I32, -1)),
                        (),
                    )),
                )),
                Return(),
            ]
            values, _ = run_single(body)
            return values[0].value
        assert make(1, NumConst(NumType.I32, 55)) == 55
        # -1 is represented as its unsigned 32-bit bit pattern.
        assert make(0, UnitV()) == 0xFFFFFFFF

    def test_linear_variant_case_frees_cell(self):
        cases = (unit(), i32())
        body = [
            NumConst(NumType.I32, 3),
            VariantMalloc(1, cases, LIN),
            MemUnpack(arrow([], [i32()]), (), (
                VariantCase(LIN, variant_ht(cases), arrow([], [i32()]), (), (
                    (Drop(), NumConst(NumType.I32, 0)),
                    (),
                )),
            )),
            Return(),
        ]
        _, interp = run_single(body)
        assert interp.store.stats()["linear_live"] == 0

    def test_array_bounds_trap(self):
        body = [
            NumConst(NumType.I32, 0),
            NumConst(NumType.UI32, 2),
            ArrayMalloc(LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 7), ArrayGet(),
                SetLocal(0),
                Drop(),
                GetLocal(0),
            )),
            Return(),
        ]
        with pytest.raises(Trap):
            run_single(body, locals_sizes=[SizeConst(32)], check=False)

    def test_tuple_group_ungroup(self):
        body = [
            NumConst(NumType.I32, 2), NumConst(NumType.I32, 3),
            SeqGroup(2, UNR),
            SeqUngroup(),
            NumBinop(NumType.I32, IntBinop.ADD),
            Return(),
        ]
        values, _ = run_single(body)
        assert values[0].value == 5

    def test_use_after_free_traps(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                SetLocal(0),
                GetLocal(0, LIN), StructFree(),
                GetLocal(1, LIN), StructGet(0),
                SetLocal(1), Drop(), GetLocal(1),
            )),
            Return(),
        ]
        # Deliberately not type-checked: this is exactly the kind of program
        # the type system rejects; the untyped interpreter traps instead.
        with pytest.raises(Trap):
            run_single(body, locals_sizes=[SizeConst(64), SizeConst(64)], check=False)


class TestGlobalsAndGc:
    def test_global_state(self):
        glob = Global(i32().pretype, True, (NumConst(NumType.I32, 10),), (), "g")
        bump = Function(
            funtype=funtype([], [i32()]),
            locals_sizes=(),
            body=(GetGlobal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.ADD),
                  SetGlobal(0), GetGlobal(0), Return()),
            exports=("bump",),
        )
        module = make_module(functions=[bump], globals=[glob])
        check_module(module)
        interp = Interpreter()
        idx = interp.instantiate(module)
        assert interp.invoke_export(idx, "bump").values[0].value == 11
        assert interp.invoke_export(idx, "bump").values[0].value == 12

    def test_gc_collects_unreachable(self):
        store = Store()
        kept = store.allocate(MemKind.UNR, StructHV((NumV(NumType.I32, 1),)), 32)
        store.allocate(MemKind.UNR, StructHV((NumV(NumType.I32, 2),)), 32)
        stats = run_gc(store, [RefV(kept)])
        assert stats.collected_unrestricted == 1
        assert store.unrestricted.contains(kept)

    def test_gc_traverses_references(self):
        store = Store()
        inner = store.allocate(MemKind.UNR, StructHV((NumV(NumType.I32, 1),)), 32)
        outer = store.allocate(MemKind.UNR, StructHV((RefV(inner),)), 32)
        stats = run_gc(store, [RefV(outer)])
        assert stats.collected_unrestricted == 0
        assert store.unrestricted.contains(inner)

    def test_gc_finalizes_owned_linear_memory(self):
        store = Store()
        linear = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 7),)), 32)
        store.allocate(MemKind.UNR, StructHV((RefV(linear),)), 32)
        stats = run_gc(store, [])
        assert stats.collected_unrestricted == 1
        assert stats.finalized_linear == 1
        assert not store.linear.contains(linear)

    def test_gc_keeps_reachable_linear_memory(self):
        store = Store()
        linear = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 7),)), 32)
        gc_cell = store.allocate(MemKind.UNR, StructHV((RefV(linear),)), 32)
        run_gc(store, [RefV(gc_cell)])
        assert store.linear.contains(linear)

    def test_gc_policy_threshold(self):
        policy = GcPolicy(allocation_threshold=2)
        assert not policy.should_collect()
        policy.note_allocation()
        policy.note_allocation()
        assert policy.should_collect()
        policy.note_collection()
        assert not policy.should_collect()


class TestStoreAndValues:
    def test_double_free_fault(self):
        store = Store()
        loc = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 1),)), 32)
        store.free(loc)
        with pytest.raises(MemoryFault):
            store.free(loc)

    def test_lookup_freed_fault(self):
        store = Store()
        loc = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 1),)), 32)
        store.free(loc)
        with pytest.raises(MemoryFault):
            store.lookup(loc)

    def test_wrong_memory_fault(self):
        store = Store()
        loc = store.allocate(MemKind.LIN, StructHV((NumV(NumType.I32, 1),)), 32)
        with pytest.raises(MemoryFault):
            store.unrestricted.lookup(loc)

    def test_value_size(self):
        assert value_size(UnitV()) == 0
        assert value_size(NumV(NumType.I64, 1)) == 64
        assert value_size(ProdV((NumV(NumType.I32, 1), NumV(NumType.I32, 2)))) == 64
        assert value_size(RefV(lin_loc(0))) == 32
