"""Unit tests for constraint contexts, environments and typing helpers."""

import pytest

from repro.core.syntax import (
    LIN,
    UNR,
    Privilege,
    SizeConst,
    SizePlus,
    SizeVar,
    i32,
    i64,
    lin_loc,
    prod,
    ref,
    struct_ht,
    unit,
)
from repro.core.syntax.qualifiers import QualVar
from repro.core.typing import (
    LinearUse,
    LocalEnv,
    LocalSlot,
    ModuleEnv,
    QualContext,
    SizeContext,
    TypeVarContext,
    closed_size_of_type,
    empty_function_env,
    types_equal,
)
from repro.core.typing.errors import LocalTypeError, QualifierError, SizeError, StoreTypeError
from repro.core.typing.env import GlobalType, StoreTyping, MemEntryTyping
from repro.core.typing.sizing import size_of_type
from repro.core.typing.validity import check_type_valid, type_no_caps
from repro.core.syntax.types import CapT, VarT, Type


class TestQualContext:
    def test_constants(self):
        ctx = QualContext()
        assert ctx.leq(UNR, LIN)
        assert not ctx.leq(LIN, UNR)

    def test_variable_with_upper_bound(self):
        ctx = QualContext().push(upper=[UNR])
        # δ0 ⪯ unr, therefore δ0 ⪯ unr ⪯ lin
        assert ctx.leq(QualVar(0), UNR)
        assert ctx.leq(QualVar(0), LIN)

    def test_variable_with_lower_bound(self):
        ctx = QualContext().push(lower=[LIN])
        assert ctx.leq(LIN, QualVar(0))
        assert ctx.is_linear(QualVar(0))

    def test_unbounded_variable_is_unknown(self):
        ctx = QualContext().push()
        assert not ctx.leq(QualVar(0), UNR)
        assert not ctx.leq(LIN, QualVar(0))
        assert ctx.leq(QualVar(0), QualVar(0))
        assert ctx.leq(QualVar(0), LIN)
        assert ctx.leq(UNR, QualVar(0))

    def test_chained_variables(self):
        # δ1 pushed first, then δ0 with upper bound δ1 which itself is ⪯ unr.
        ctx = QualContext().push(upper=[UNR]).push(upper=[QualVar(0)])
        assert ctx.leq(QualVar(0), UNR)

    def test_require_leq_raises(self):
        with pytest.raises(QualifierError):
            QualContext().require_leq(LIN, UNR)

    def test_join(self):
        ctx = QualContext()
        assert ctx.join([UNR, UNR]) is UNR
        assert ctx.join([UNR, LIN]) is LIN
        assert ctx.join([]) is UNR

    def test_unbound_variable_raises(self):
        with pytest.raises(QualifierError):
            QualContext().leq(QualVar(0), UNR)


class TestSizeContext:
    def test_constant_comparison(self):
        ctx = SizeContext()
        assert ctx.leq(SizeConst(32), SizeConst(64))
        assert not ctx.leq(SizeConst(64), SizeConst(32))

    def test_variable_upper_bound(self):
        ctx = SizeContext().push(upper=[SizeConst(64)])
        assert ctx.leq(SizeVar(0), SizeConst(64))
        assert ctx.leq(SizeVar(0), SizeConst(128))
        assert not ctx.leq(SizeVar(0), SizeConst(32))

    def test_variable_lower_bound(self):
        ctx = SizeContext().push(lower=[SizeConst(32)])
        assert ctx.leq(SizeConst(32), SizeVar(0))
        assert not ctx.leq(SizeConst(64), SizeVar(0))

    def test_same_variable_cancels(self):
        ctx = SizeContext().push()
        size = SizeVar(0)
        assert ctx.leq(size, size)
        assert ctx.leq(size, SizePlus(size, SizeConst(8)))

    def test_sum_with_bounded_variables(self):
        # σ1 ≤ 32 and σ0 ≤ 32 imply σ0 + σ1 ≤ 64.
        ctx = SizeContext().push(upper=[SizeConst(32)]).push(upper=[SizeConst(32)])
        assert ctx.leq(SizePlus(SizeVar(0), SizeVar(1)), SizeConst(64))

    def test_unbounded_variable_cannot_be_bounded(self):
        ctx = SizeContext().push()
        assert not ctx.leq(SizeVar(0), SizeConst(1024))

    def test_require_leq_raises(self):
        with pytest.raises(SizeError):
            SizeContext().require_leq(SizeConst(64), SizeConst(32))

    def test_unbound_variable_raises(self):
        with pytest.raises(SizeError):
            SizeContext().leq(SizeVar(0), SizeConst(0))


class TestSizing:
    def test_numeric_sizes(self):
        assert closed_size_of_type(i32()) == SizeConst(32)
        assert closed_size_of_type(i64()) == SizeConst(64)
        assert closed_size_of_type(unit()) == SizeConst(0)

    def test_tuple_size_is_sum(self):
        assert closed_size_of_type(prod([i32(), i64()], UNR)) == SizeConst(96)

    def test_ref_is_pointer_sized(self):
        ty = ref(Privilege.RW, lin_loc(0), struct_ht([(i64(), SizeConst(64))]), LIN)
        assert closed_size_of_type(ty) == SizeConst(32)

    def test_cap_is_erased(self):
        ty = Type(CapT(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))])), LIN)
        assert closed_size_of_type(ty) == SizeConst(0)

    def test_type_variable_uses_declared_bound(self):
        ctx = TypeVarContext().push(UNR, SizeConst(128))
        assert size_of_type(Type(VarT(0), UNR), ctx) == SizeConst(128)


class TestLocalEnv:
    def test_get_and_set(self):
        env = LocalEnv((LocalSlot(i32(), SizeConst(32)),))
        assert env.get(0).type == i32()
        updated = env.set_type(0, unit())
        assert updated.get(0).type == unit()
        # original unchanged (persistent structure)
        assert env.get(0).type == i32()

    def test_out_of_range(self):
        with pytest.raises(LocalTypeError):
            LocalEnv(()).get(0)


class TestStoreTypingAndLinearUse:
    def test_linear_use_rejects_duplication(self):
        use = LinearUse()
        use.claim(lin_loc(0))
        with pytest.raises(StoreTypeError):
            use.claim(lin_loc(0))

    def test_unrestricted_locations_not_tracked(self):
        from repro.core.syntax import unr_loc

        use = LinearUse()
        use.claim(unr_loc(0))
        use.claim(unr_loc(0))  # fine: not a linear resource

    def test_merge_disjoint(self):
        left, right = LinearUse(), LinearUse()
        left.claim(lin_loc(0))
        right.claim(lin_loc(1))
        left.merge(right)
        assert left.used == {0, 1}

    def test_merge_overlap_raises(self):
        left, right = LinearUse(), LinearUse()
        left.claim(lin_loc(0))
        right.claim(lin_loc(0))
        with pytest.raises(StoreTypeError):
            left.merge(right)

    def test_store_typing_lookup(self):
        ht = struct_ht([(i32(), SizeConst(32))])
        st = StoreTyping(lin={0: MemEntryTyping(ht, 32)})
        assert st.lookup(lin_loc(0)).heaptype == ht
        with pytest.raises(StoreTypeError):
            st.lookup(lin_loc(1))


class TestValidity:
    def test_well_formed_type(self):
        env = empty_function_env()
        check_type_valid(env, prod([i32(), i64()], UNR))

    def test_unbound_type_variable_rejected(self):
        env = empty_function_env()
        with pytest.raises(Exception):
            check_type_valid(env, Type(VarT(0), UNR))

    def test_unrestricted_tuple_with_linear_component_rejected(self):
        env = empty_function_env()
        linear_component = ref(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))]), LIN)
        with pytest.raises(QualifierError):
            check_type_valid(env, prod([linear_component], UNR))

    def test_no_caps(self):
        env = empty_function_env()
        assert type_no_caps(env, i32())
        assert not type_no_caps(env, Type(CapT(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))])), LIN))


class TestTypeEquality:
    def test_size_normalisation_in_struct(self):
        lhs = ref(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizePlus(SizeConst(16), SizeConst(16)))]), LIN)
        rhs = ref(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))]), LIN)
        assert types_equal(lhs, rhs)

    def test_qualifier_matters(self):
        assert not types_equal(i32(), i32(LIN))


class TestQualEntailmentMemoization:
    """PR 5: ``QualContext.leq`` computes reachability closures once per
    context instead of re-walking the bound graph per query."""

    @staticmethod
    def _dense_context(layers: int) -> QualContext:
        """A diamond lattice: variable ``i`` has *two* upper bounds (``i+1``
        and ``i+2``), so the number of upward paths doubles per layer.  The
        old visited-set recursion explored every path on a failing query —
        O(2^layers); the closure-based entailment is linear.  Variable
        ``layers`` (the last one) is isolated: nothing reaches it."""

        from repro.core.typing.constraints import QualBounds

        bounds = []
        for index in range(layers):
            uppers = tuple(
                QualVar(j) for j in (index + 1, index + 2) if j < layers - 1
            )
            bounds.append(QualBounds(upper=uppers))
        bounds.append(QualBounds())  # the unreachable sink
        return QualContext(bounds)

    def test_dense_graph_negative_query_is_polynomial(self):
        # 60 layers ≈ 2^59 paths for the pre-memoization recursion — this
        # test only terminates with the closure-based algorithm.
        layers = 60
        ctx = self._dense_context(layers)
        assert not ctx.leq(QualVar(0), QualVar(layers))
        # The closure was computed once and covers every diamond variable.
        assert len(ctx._up[QualVar(0)]) == layers - 1
        # The verdict is memoized: repeated queries are dictionary hits.
        assert ctx._memo[(QualVar(0), QualVar(layers))] is False
        assert not ctx.leq(QualVar(0), QualVar(layers))

    def test_dense_graph_positive_query(self):
        ctx = self._dense_context(20)
        assert ctx.leq(QualVar(0), QualVar(17))
        assert ctx.leq(QualVar(0), LIN)
        assert ctx.leq(UNR, QualVar(19))

    def test_closure_entailment_matches_recursive_oracle(self):
        """Differential check against the original visited-set recursion on
        every query over a small but cyclic/dense graph."""

        from repro.core.typing.constraints import QualBounds

        graphs = [
            # chain with a cycle
            [QualBounds(upper=(QualVar(1),)), QualBounds(upper=(QualVar(0), QualVar(2))),
             QualBounds(lower=(QualVar(0),))],
            # constants as bounds
            [QualBounds(upper=(LIN,)), QualBounds(lower=(UNR,), upper=(QualVar(0),)),
             QualBounds(lower=(QualVar(1),))],
            # diamond
            [QualBounds(upper=(QualVar(1), QualVar(2))), QualBounds(upper=(QualVar(3),)),
             QualBounds(upper=(QualVar(3),)), QualBounds()],
        ]
        for bounds in graphs:
            ctx = QualContext(list(bounds))
            oracle = QualContext(list(bounds))
            candidates = [UNR, LIN, *(QualVar(i) for i in range(len(bounds)))]
            for lhs in candidates:
                for rhs in candidates:
                    assert ctx.leq(lhs, rhs) == oracle._leq_recursive(
                        lhs, rhs, frozenset()
                    ), f"{lhs} ⪯ {rhs} disagrees on {bounds}"

    def test_push_does_not_inherit_stale_memo(self):
        ctx = QualContext().push(upper=[LIN])
        assert ctx.leq(QualVar(0), LIN)
        extended = ctx.push(lower=[UNR])
        assert extended._memo == {}
        assert extended.leq(QualVar(1), LIN)

    def test_size_leq_is_memoized_per_context(self):
        ctx = SizeContext().push(upper=[SizeConst(64)])
        assert ctx.leq(SizeVar(0), SizeConst(64))
        assert ctx._memo[(SizeVar(0), SizeConst(64))] is True
        assert not ctx.leq(SizeConst(65), SizeVar(0))
        fresh = ctx.push()
        assert fresh._memo == {}
