"""Tests for the instruction/module type checker: positive and negative cases.

These exercise the linearity, size, qualifier and capability side conditions
of Fig. 7 — each negative test corresponds to a memory-safety violation the
paper's type system is designed to rule out.
"""

import pytest

from repro.core.syntax import (
    ArrayFree,
    ArrayGet,
    ArrayMalloc,
    ArraySet,
    Block,
    Br,
    BrIf,
    Call,
    CapJoin,
    CapSplit,
    Drop,
    Function,
    GetGlobal,
    GetLocal,
    Global,
    If,
    IntBinop,
    LIN,
    Loop,
    MemUnpack,
    NumBinop,
    NumConst,
    NumRelop,
    IntRelop,
    NumTestop,
    NumType,
    Qualify,
    RefJoin,
    RefSplit,
    Return,
    Select,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructMalloc,
    StructSet,
    StructSwap,
    Table,
    TeeLocal,
    UNR,
    UnitT,
    Unreachable,
    VariantCase,
    VariantMalloc,
    arrow,
    funtype,
    i32,
    i64,
    make_module,
    unit,
    variant_ht,
)
from repro.core.typing import check_module
from repro.core.typing.errors import (
    LinearityError,
    LocalTypeError,
    ModuleTypeError,
    QualifierError,
    RichWasmTypeError,
    SizeError,
    StackTypeError,
)


def single_function_module(body, params=(), results=(), locals_sizes=(), globals=()):
    function = Function(
        funtype=funtype(list(params), list(results)),
        locals_sizes=tuple(locals_sizes),
        body=tuple(body),
        exports=("main",),
    )
    return make_module(functions=[function], globals=list(globals))


def check(body, **kwargs):
    return check_module(single_function_module(body, **kwargs))


class TestNumericAndControl:
    def test_arithmetic(self):
        check([NumConst(NumType.I32, 1), NumConst(NumType.I32, 2),
               NumBinop(NumType.I32, IntBinop.ADD), Drop()])

    def test_relop_produces_i32(self):
        check([NumConst(NumType.I64, 1), NumConst(NumType.I64, 2),
               NumRelop(NumType.I64, IntRelop.LT_S), Drop()])

    def test_type_mismatch_rejected(self):
        with pytest.raises(StackTypeError):
            check([NumConst(NumType.I32, 1), NumConst(NumType.I64, 2),
                   NumBinop(NumType.I32, IntBinop.ADD), Drop()])

    def test_stack_underflow_rejected(self):
        with pytest.raises(StackTypeError):
            check([NumBinop(NumType.I32, IntBinop.ADD), Drop()])

    def test_block_and_branch(self):
        check([
            Block(arrow([], [i32()]), (), (NumConst(NumType.I32, 3), Br(0))),
            Drop(),
        ])

    def test_loop_with_conditional_exit(self):
        check([
            Block(arrow([], []), (), (
                Loop(arrow([], []), (
                    NumConst(NumType.I32, 0), NumTestop(NumType.I32), BrIf(1), Br(0),
                )),
            )),
        ])

    def test_branch_with_wrong_result_type(self):
        with pytest.raises(StackTypeError):
            check([
                Block(arrow([], [i32()]), (), (NumConst(NumType.I64, 3), Br(0))),
                Drop(),
            ])

    def test_branch_depth_out_of_range(self):
        with pytest.raises((LocalTypeError, RichWasmTypeError)):
            check([Block(arrow([], []), (), (Br(5),))])

    def test_if_requires_condition(self):
        check([NumConst(NumType.I32, 1),
               If(arrow([], [i32()]), (), (NumConst(NumType.I32, 1),), (NumConst(NumType.I32, 2),)),
               Drop()])

    def test_block_leaving_extra_values_rejected(self):
        with pytest.raises(StackTypeError):
            check([Block(arrow([], []), (), (NumConst(NumType.I32, 1),))])

    def test_unreachable_makes_rest_dead(self):
        check([Unreachable(), NumBinop(NumType.I32, IntBinop.ADD)], results=[i32()])

    def test_return_checks_types(self):
        check([NumConst(NumType.I32, 1), Return()], results=[i32()])
        with pytest.raises(StackTypeError):
            check([NumConst(NumType.I64, 1), Return()], results=[i32()])

    def test_select_requires_equal_unrestricted(self):
        check([NumConst(NumType.I32, 1), NumConst(NumType.I32, 2), NumConst(NumType.I32, 0),
               Select(), Drop()])
        with pytest.raises(StackTypeError):
            check([NumConst(NumType.I32, 1), NumConst(NumType.I64, 2), NumConst(NumType.I32, 0),
                   Select(), Drop()])


class TestLocalsAndGlobals:
    def test_set_then_get(self):
        check([NumConst(NumType.I32, 7), SetLocal(0), GetLocal(0), Drop()],
              locals_sizes=[SizeConst(32)])

    def test_value_too_large_for_slot(self):
        with pytest.raises(SizeError):
            check([NumConst(NumType.I64, 7), SetLocal(0)], locals_sizes=[SizeConst(32)])

    def test_tee_local(self):
        check([NumConst(NumType.I32, 7), TeeLocal(0), Drop()], locals_sizes=[SizeConst(32)])

    def test_get_linear_local_moves_value(self):
        # Reading a linear local twice: the second read produces unit, which
        # cannot be returned at the reference type.
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            SetLocal(0),
            GetLocal(0, LIN),
            Drop(),
        ]
        with pytest.raises(LinearityError):
            check(body, locals_sizes=[SizeConst(64)])

    def test_overwriting_linear_local_rejected(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            SetLocal(0),
            NumConst(NumType.I32, 0),
            SetLocal(0),
        ]
        with pytest.raises(LinearityError):
            check(body, locals_sizes=[SizeConst(64)])

    def test_globals(self):
        glob = Global(i32().pretype, True, (NumConst(NumType.I32, 0),), (), "g")
        check([GetGlobal(0), Drop(), NumConst(NumType.I32, 4), SetGlobal(0)], globals=[glob])

    def test_immutable_global_rejected(self):
        glob = Global(i32().pretype, False, (NumConst(NumType.I32, 0),), (), "g")
        with pytest.raises(RichWasmTypeError):
            check([NumConst(NumType.I32, 4), SetGlobal(0)], globals=[glob])

    def test_unknown_local_rejected(self):
        with pytest.raises(LocalTypeError):
            check([GetLocal(3), Drop()])


class TestLinearity:
    def test_dropping_linear_value_rejected(self):
        with pytest.raises(LinearityError):
            check([NumConst(NumType.I32, 1), StructMalloc((SizeConst(32),), LIN), Drop()])

    def test_unrestricted_struct_can_be_dropped(self):
        check([NumConst(NumType.I32, 1), StructMalloc((SizeConst(32),), UNR), Drop()])

    def test_branch_dropping_linear_value_rejected(self):
        body = [
            Block(arrow([], []), (), (
                NumConst(NumType.I32, 1),
                StructMalloc((SizeConst(32),), LIN),
                Br(0),
            )),
        ]
        with pytest.raises((LinearityError, StackTypeError)):
            check(body)

    def test_linear_value_left_in_local_at_return_rejected(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            SetLocal(0),
        ]
        with pytest.raises(LinearityError):
            check(body, locals_sizes=[SizeConst(64)])

    def test_qualify_cannot_weaken(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], []), (), (Qualify(UNR), Drop())),
        ]
        with pytest.raises(QualifierError):
            check(body)

    def test_qualify_strengthened_value_cannot_be_dropped(self):
        # unr -> lin strengthening is allowed, after which the value is linear
        # and dropping it is a linearity error.
        with pytest.raises(LinearityError):
            check([NumConst(NumType.I32, 1), Qualify(LIN), Drop()])

    def test_qualify_strengthened_value_can_be_returned(self):
        check([NumConst(NumType.I32, 1), Qualify(LIN), Return()], results=[i32(LIN)])


class TestStructs:
    def roundtrip_body(self, qual):
        return [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), qual),
            MemUnpack(arrow([], [i32()]), (), (
                StructGet(0),
                SetLocal(0),
                *( (StructFree(),) if qual is LIN else (Drop(),) ),
                GetLocal(0),
            )),
            Return(),
        ]

    def test_linear_roundtrip(self):
        check(self.roundtrip_body(LIN), results=[i32()], locals_sizes=[SizeConst(32)])

    def test_unrestricted_roundtrip(self):
        check(self.roundtrip_body(UNR), results=[i32()], locals_sizes=[SizeConst(32)])

    def test_field_size_overflow_rejected(self):
        with pytest.raises(SizeError):
            check([NumConst(NumType.I64, 7), StructMalloc((SizeConst(32),), LIN), Drop()])

    def test_strong_update_through_unrestricted_ref_rejected(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(64),), UNR),
            MemUnpack(arrow([], []), (), (
                NumConst(NumType.I64, 1),
                StructSet(0),
                Drop(),
            )),
        ]
        with pytest.raises(RichWasmTypeError):
            check(body)

    def test_strong_update_through_linear_ref_allowed(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(64),), LIN),
            MemUnpack(arrow([], []), (), (
                NumConst(NumType.I64, 1),
                StructSet(0),
                StructFree(),
            )),
        ]
        check(body)

    def test_struct_get_of_linear_field_rejected(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),       # inner linear cell
            StructMalloc((SizeConst(64),), LIN),        # outer cell holding it
            MemUnpack(arrow([], []), (), (
                StructGet(0),
                Drop(), Drop(),
            )),
        ]
        with pytest.raises((LinearityError, StackTypeError, RichWasmTypeError)):
            check(body)

    def test_struct_free_with_linear_field_rejected(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            StructMalloc((SizeConst(64),), LIN),
            MemUnpack(arrow([], []), (), (StructFree(),)),
        ]
        with pytest.raises(LinearityError):
            check(body)

    def test_struct_swap_preserves_linearity(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            StructMalloc((SizeConst(64),), LIN),
            MemUnpack(arrow([], []), (), (
                NumConst(NumType.I32, 5),
                StructSwap(0),
                # stack: ref', old linear cell — free the old cell, then the outer.
                MemUnpack(arrow([], []), (), (StructFree(),)),
                StructFree(),
            )),
        ]
        check(body)

    def test_double_free_rejected(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], []), (), (StructFree(), StructFree())),
        ]
        with pytest.raises(StackTypeError):
            check(body)

    def test_free_of_unrestricted_ref_rejected(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), UNR),
            MemUnpack(arrow([], []), (), (StructFree(),)),
        ]
        with pytest.raises(LinearityError):
            check(body)


class TestVariantsAndArrays:
    def test_variant_case_linear(self):
        cases = (unit(), i32())
        body = [
            NumConst(NumType.I32, 3),
            VariantMalloc(1, cases, LIN),
            MemUnpack(arrow([], [i32()]), (), (
                VariantCase(LIN, variant_ht(cases), arrow([], [i32()]), (), (
                    (Drop(), NumConst(NumType.I32, 0)),
                    (),
                )),
            )),
            Return(),
        ]
        check(body, results=[i32()])

    def test_variant_case_unrestricted_returns_ref(self):
        cases = (unit(), i32())
        body = [
            NumConst(NumType.I32, 3),
            VariantMalloc(1, cases, UNR),
            MemUnpack(arrow([], [i32()]), (), (
                VariantCase(UNR, variant_ht(cases), arrow([], [i32()]), (), (
                    (Drop(), NumConst(NumType.I32, 0)),
                    (),
                )),
                # stack: ref, result
                SetLocal(0),
                Drop(),
                GetLocal(0),
            )),
            Return(),
        ]
        check(body, results=[i32()], locals_sizes=[SizeConst(32)])

    def test_variant_branch_count_mismatch(self):
        cases = (unit(), i32())
        body = [
            NumConst(NumType.I32, 3),
            VariantMalloc(1, cases, LIN),
            MemUnpack(arrow([], [i32()]), (), (
                VariantCase(LIN, variant_ht(cases), arrow([], [i32()]), (), (
                    (Drop(), NumConst(NumType.I32, 0)),
                )),
            )),
            Return(),
        ]
        with pytest.raises(RichWasmTypeError):
            check(body, results=[i32()])

    def test_variant_malloc_tag_out_of_range(self):
        with pytest.raises(RichWasmTypeError):
            check([NumConst(NumType.I32, 1), VariantMalloc(5, (i32(),), LIN), Drop()])

    def test_array_roundtrip(self):
        body = [
            NumConst(NumType.I32, 0),
            NumConst(NumType.UI32, 4),
            ArrayMalloc(LIN),
            MemUnpack(arrow([], [i32()]), (), (
                NumConst(NumType.I32, 2), NumConst(NumType.I32, 99), ArraySet(),
                NumConst(NumType.I32, 2), ArrayGet(),
                SetLocal(0),
                ArrayFree(),
                GetLocal(0),
            )),
            Return(),
        ]
        check(body, results=[i32()], locals_sizes=[SizeConst(32)])

    def test_array_of_linear_elements_rejected(self):
        body = [
            NumConst(NumType.I32, 1),
            StructMalloc((SizeConst(32),), LIN),
            NumConst(NumType.UI32, 4),
            ArrayMalloc(LIN),
            Drop(),
        ]
        with pytest.raises(LinearityError):
            check(body)

    def test_array_set_wrong_element_type(self):
        body = [
            NumConst(NumType.I32, 0),
            NumConst(NumType.UI32, 4),
            ArrayMalloc(LIN),
            MemUnpack(arrow([], []), (), (
                NumConst(NumType.I32, 2), NumConst(NumType.I64, 1), ArraySet(),
                ArrayFree(),
            )),
        ]
        with pytest.raises(StackTypeError):
            check(body)


class TestCapabilitiesAndFunctions:
    def test_ref_split_join_roundtrip(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], []), (), (
                RefSplit(),
                RefJoin(),
                StructFree(),
            )),
        ]
        check(body)

    def test_cap_split_join_roundtrip(self):
        body = [
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], []), (), (
                RefSplit(),
                SetLocal(0),          # stash the pointer (unrestricted)
                CapSplit(),
                CapJoin(),
                GetLocal(0),
                RefJoin(),
                StructFree(),
            )),
        ]
        check(body, locals_sizes=[SizeConst(32)])

    def test_direct_call(self):
        callee = Function(
            funtype=funtype([i32()], [i32()]),
            locals_sizes=(),
            body=(GetLocal(0), Return()),
            exports=(),
            name="id",
        )
        caller = Function(
            funtype=funtype([], [i32()]),
            locals_sizes=(),
            body=(NumConst(NumType.I32, 5), Call(0, ()), Return()),
            exports=("main",),
        )
        check_module(make_module(functions=[callee, caller]))

    def test_call_argument_mismatch(self):
        callee = Function(
            funtype=funtype([i64()], [i64()]),
            locals_sizes=(),
            body=(GetLocal(0), Return()),
        )
        caller = Function(
            funtype=funtype([], [i64()]),
            locals_sizes=(),
            body=(NumConst(NumType.I32, 5), Call(0, ()), Return()),
        )
        with pytest.raises(StackTypeError):
            check_module(make_module(functions=[callee, caller]))

    def test_table_entry_out_of_range(self):
        function = Function(funtype=funtype([], []), locals_sizes=(), body=(Return(),))
        with pytest.raises(ModuleTypeError):
            check_module(make_module(functions=[function], table=Table(entries=(5,))))
