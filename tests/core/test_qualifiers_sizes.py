"""Unit tests for qualifiers, sizes and locations (core syntax)."""

import pytest

from repro.core.syntax import (
    LIN,
    UNR,
    ConcreteLoc,
    MemKind,
    SizeConst,
    SizePlus,
    SizeVar,
    eval_size,
    lin_loc,
    normalize_size,
    qual_const_join,
    qual_const_leq,
    qual_const_meet,
    size_plus,
    size_structurally_equal,
    size_sum,
    unr_loc,
)
from repro.core.syntax.qualifiers import QualVar, shift_qual, substitute_qual
from repro.core.syntax.sizes import shift_size, size_free_vars, substitute_size
from repro.core.syntax.locations import LocVar, shift_loc, substitute_loc


class TestQualifiers:
    def test_ordering_unr_below_lin(self):
        assert qual_const_leq(UNR, LIN)
        assert qual_const_leq(UNR, UNR)
        assert qual_const_leq(LIN, LIN)
        assert not qual_const_leq(LIN, UNR)

    def test_join_and_meet(self):
        assert qual_const_join(UNR, UNR) is UNR
        assert qual_const_join(UNR, LIN) is LIN
        assert qual_const_join(LIN, LIN) is LIN
        assert qual_const_meet(LIN, LIN) is LIN
        assert qual_const_meet(UNR, LIN) is UNR

    def test_properties(self):
        assert LIN.is_linear and not LIN.is_unrestricted
        assert UNR.is_unrestricted and not UNR.is_linear

    def test_qual_var_index_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            QualVar(-1)

    def test_shift_respects_cutoff(self):
        assert shift_qual(QualVar(0), 2, cutoff=1) == QualVar(0)
        assert shift_qual(QualVar(3), 2, cutoff=1) == QualVar(5)
        assert shift_qual(UNR, 2) is UNR

    def test_substitute(self):
        assert substitute_qual(QualVar(1), {1: LIN}) is LIN
        assert substitute_qual(QualVar(0), {1: LIN}) == QualVar(0)
        assert substitute_qual(UNR, {0: LIN}) is UNR


class TestSizes:
    def test_eval_constant_sum(self):
        assert eval_size(size_plus(SizeConst(32), SizeConst(64))) == 96

    def test_plus_folds_constants(self):
        assert size_plus(SizeConst(8), SizeConst(8)) == SizeConst(16)
        assert size_plus(SizeConst(0), SizeVar(0)) == SizeVar(0)

    def test_sum_of_list(self):
        assert eval_size(size_sum([SizeConst(1), SizeConst(2), SizeConst(3)])) == 6

    def test_eval_with_environment(self):
        size = size_plus(SizeVar(0), SizeConst(32))
        assert eval_size(size, {0: 64}) == 96

    def test_eval_open_size_raises(self):
        with pytest.raises(ValueError):
            eval_size(SizeVar(0))

    def test_free_vars(self):
        size = SizePlus(SizeVar(1), SizePlus(SizeConst(4), SizeVar(3)))
        assert size_free_vars(size) == {1, 3}

    def test_structural_equality_commutes(self):
        lhs = SizePlus(SizeVar(0), SizeConst(32))
        rhs = SizePlus(SizeConst(32), SizeVar(0))
        assert size_structurally_equal(lhs, rhs)
        assert not size_structurally_equal(lhs, SizeVar(0))

    def test_normalize_folds_constants(self):
        size = SizePlus(SizeConst(8), SizePlus(SizeConst(8), SizeConst(16)))
        assert normalize_size(size) == SizeConst(32)

    def test_shift_and_substitute(self):
        size = SizePlus(SizeVar(0), SizeVar(2))
        assert size_free_vars(shift_size(size, 1, cutoff=1)) == {0, 3}
        substituted = substitute_size(size, {0: SizeConst(8)})
        assert eval_size(substituted, {2: 8}) == 16

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SizeConst(-1)


class TestLocations:
    def test_concrete_locations(self):
        assert lin_loc(3).mem is MemKind.LIN
        assert unr_loc(3).mem is MemKind.UNR
        assert lin_loc(3) != unr_loc(3)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ConcreteLoc(-1, MemKind.LIN)

    def test_shift_and_substitute(self):
        assert shift_loc(LocVar(2), 3) == LocVar(5)
        assert shift_loc(LocVar(0), 3, cutoff=1) == LocVar(0)
        assert substitute_loc(LocVar(0), {0: lin_loc(7)}) == lin_loc(7)
        assert substitute_loc(lin_loc(1), {0: lin_loc(7)}) == lin_loc(1)

    def test_mem_kind_predicates(self):
        assert MemKind.LIN.is_linear and not MemKind.LIN.is_unrestricted
        assert MemKind.UNR.is_unrestricted
