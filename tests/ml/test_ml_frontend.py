"""Tests for the ML frontend: type checker, compiler, end-to-end behaviour."""

import pytest

from repro.core.semantics import Interpreter, Trap
from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module as rw_check_module
from repro.core.typing.errors import RichWasmTypeError
from repro.lower import lower_module
from repro.ml import (
    App,
    Assign,
    BinOp,
    BoolLit,
    Case,
    Deref,
    Fst,
    If,
    Inl,
    Inr,
    IntLit,
    Lam,
    Let,
    LinType,
    MkRef,
    MkRefToLin,
    MLFunction,
    MLGlobal,
    MLImport,
    MLTypeError,
    Pair,
    RefToLin,
    Seq,
    Snd,
    TBool,
    TFun,
    TInt,
    TPair,
    TRef,
    TSum,
    TUnit,
    Unit,
    Var,
    check_module,
    compile_ml_module,
    compile_type,
    ml_module,
)
from repro.wasm import WasmInterpreter, validate_module


def compile_and_run(module, calls):
    """Compile an ML module, run each (export, args) call on both backends."""

    richwasm = compile_ml_module(module)
    rw_check_module(richwasm)
    interp = Interpreter()
    idx = interp.instantiate(richwasm)
    rw_results = []
    for export, args in calls:
        rw_results.append([v.value if isinstance(v, NumV) else None
                           for v in interp.invoke_export(idx, export, args).values])

    lowered = lower_module(richwasm)
    validate_module(lowered.wasm)
    wasm = WasmInterpreter()
    inst = wasm.instantiate(lowered.wasm)
    if "_init" in inst.exports:
        wasm.invoke(inst, "_init")
    wasm_results = []
    for export, args in calls:
        raw = [a.value if isinstance(a, NumV) else 0 for a in args]
        wasm_results.append(wasm.invoke(inst, export, raw))
    return rw_results, wasm_results


class TestMLTypechecker:
    def test_simple_expressions(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(), BinOp("+", Var("x"), IntLit(1))),
        ])
        check_module(module)

    def test_unbound_variable(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(), Var("nope")),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)

    def test_application_type_mismatch(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       App(Lam("y", TBool(), IntLit(1)), Var("x"))),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)

    def test_if_branches_must_agree(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       If(BoolLit(True), IntLit(1), Unit())),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)

    def test_assignment_type_mismatch(self):
        module = ml_module("m", functions=[
            MLFunction("f", "r", TRef(TInt()), TUnit(), Assign(Var("r"), Unit())),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)

    def test_result_type_mismatch(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TBool(), Var("x")),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)

    def test_ref_to_lin_types(self):
        module = ml_module("m", functions=[
            MLFunction("f", "r", RefToLin(TRef(TInt())), LinType(TRef(TInt())), Deref(Var("r"))),
        ])
        check_module(module)

    def test_case_on_non_sum_rejected(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       Case(Var("x"), "a", IntLit(1), "b", IntLit(2))),
        ])
        with pytest.raises(MLTypeError):
            check_module(module)


class TestTypeTranslation:
    def test_base_types(self):
        from repro.core.syntax import UnitT, NumT

        assert isinstance(compile_type(TUnit()).pretype, UnitT)
        assert isinstance(compile_type(TInt()).pretype, NumT)

    def test_ref_is_gc_struct(self):
        from repro.core.syntax import ExLocT, UNR

        compiled = compile_type(TRef(TInt()))
        assert isinstance(compiled.pretype, ExLocT)
        assert compiled.qual == UNR

    def test_linear_ref_is_linear(self):
        from repro.core.syntax import LIN

        assert compile_type(LinType(TRef(TInt()))).qual == LIN

    def test_function_type_is_closure_package(self):
        from repro.core.syntax import ExLocT

        compiled = compile_type(TFun(TInt(), TInt()))
        assert isinstance(compiled.pretype, ExLocT)

    def test_linking_types_agree_with_l3(self):
        # The interop point: ML's (ref int)lin and L3's Ref !int compile to
        # the same RichWasm type.
        from repro.core.typing import types_equal
        from repro.l3 import LBang, LInt, LMLRef, mlref_type

        assert types_equal(compile_type(LinType(TRef(TInt()))), mlref_type(LBang(LInt())))


class TestEndToEnd:
    def test_arithmetic_and_pairs(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       Let("p", Pair(Var("x"), IntLit(3)),
                           BinOp("*", Fst(Var("p")), Snd(Var("p"))))),
        ])
        rw, wasm = compile_and_run(module, [("f", [NumV(NumType.I32, 7)])])
        assert rw == wasm == [[21]]

    def test_closures_capture_environment(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       Let("k", BinOp("+", Var("x"), IntLit(1)),
                           Let("g", Lam("y", TInt(), BinOp("*", Var("y"), Var("k"))),
                               App(Var("g"), IntLit(10))))),
        ])
        rw, wasm = compile_and_run(module, [("f", [NumV(NumType.I32, 4)])])
        assert rw == wasm == [[50]]

    def test_higher_order_via_eta_expansion(self):
        module = ml_module("m", functions=[
            MLFunction("inc", "x", TInt(), TInt(), BinOp("+", Var("x"), IntLit(1))),
            MLFunction("apply_twice", "x", TInt(), TInt(),
                       Let("f", Var("inc"), App(Var("f"), App(Var("f"), Var("x"))))),
        ])
        rw, wasm = compile_and_run(module, [("apply_twice", [NumV(NumType.I32, 5)])])
        assert rw == wasm == [[7]]

    def test_sums_and_case(self):
        sum_ty = TSum(TUnit(), TInt())
        module = ml_module("m", functions=[
            MLFunction("classify", "x", TInt(), TInt(),
                       Case(If(BinOp("<", Var("x"), IntLit(0)), Inl(Unit(), sum_ty), Inr(Var("x"), sum_ty)),
                            "n", IntLit(0),
                            "p", BinOp("+", Var("p"), IntLit(1)))),
        ])
        rw, wasm = compile_and_run(module, [
            ("classify", [NumV(NumType.I32, -3)]),
            ("classify", [NumV(NumType.I32, 10)]),
        ])
        assert rw == wasm == [[0], [11]]

    def test_module_state_through_references(self):
        module = ml_module(
            "m",
            globals=[MLGlobal("acc", TRef(TInt()), MkRef(IntLit(0)))],
            functions=[
                MLFunction("add", "x", TInt(), TInt(),
                           Seq(Assign(Var("acc"), BinOp("+", Deref(Var("acc")), Var("x"))),
                               Deref(Var("acc")))),
            ],
        )
        rw, wasm = compile_and_run(module, [
            ("add", [NumV(NumType.I32, 5)]),
            ("add", [NumV(NumType.I32, 7)]),
        ])
        assert rw == wasm == [[5], [12]]

    def test_nested_data(self):
        module = ml_module("m", functions=[
            MLFunction("f", "x", TInt(), TInt(),
                       Let("r", MkRef(Pair(Var("x"), IntLit(2))),
                           BinOp("+", Fst(Deref(Var("r"))), Snd(Deref(Var("r")))))),
        ])
        rw, wasm = compile_and_run(module, [("f", [NumV(NumType.I32, 40)])])
        assert rw == wasm == [[42]]


class TestLinkingTypes:
    def build_stash_module(self, return_ref: bool):
        lin = LinType(TRef(TInt()))
        body = Seq(Assign(Var("c"), Var("r")), Var("r")) if return_ref else Assign(Var("c"), Var("r"))
        return ml_module(
            "ml",
            globals=[MLGlobal("c", RefToLin(TRef(TInt())), MkRefToLin(TRef(TInt())))],
            functions=[
                MLFunction("stash", "r", lin, lin if return_ref else TUnit(), body),
                MLFunction("get_stashed", "u", TUnit(), lin, Deref(Var("c"))),
            ],
        )

    def test_duplicating_stash_rejected_by_richwasm(self):
        # The ML type checker does not track linearity of linking types...
        module = self.build_stash_module(return_ref=True)
        check_module(module)
        # ...but the compiled RichWasm is rejected.
        richwasm = compile_ml_module(module)
        with pytest.raises(RichWasmTypeError):
            rw_check_module(richwasm)

    def test_consuming_stash_accepted(self):
        richwasm = compile_ml_module(self.build_stash_module(return_ref=False))
        rw_check_module(richwasm)

    def test_discarding_a_linear_read_is_rejected(self):
        # Binding the linear value read from a ref_to_lin cell and then
        # silently discarding it would drop a linear resource: the compiled
        # RichWasm cannot type check (the FFI tests cover the runtime trap for
        # a genuine double read through take()).
        module = ml_module(
            "ml",
            globals=[MLGlobal("c", RefToLin(TRef(TInt())), MkRefToLin(TRef(TInt())))],
            functions=[
                MLFunction("discard", "u", TUnit(), TUnit(),
                           Let("a", Deref(Var("c")), Unit())),
            ],
        )
        richwasm = compile_ml_module(module)
        with pytest.raises(RichWasmTypeError):
            rw_check_module(richwasm)
