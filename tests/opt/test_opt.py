"""Tests for the Wasm optimization subsystem (repro.opt)."""

import pytest

from repro.api import CompileConfig
from repro.ffi import Program, counter_program
from repro.l3 import compile_l3_module
from repro.lower import LoweredModule, lower_module
from repro.ml import compile_ml_module
from repro.opt import (
    BlockFlatteningPass,
    ConstantFoldingPass,
    CopyPropagationPass,
    DeadCodeEliminationPass,
    DeadFunctionPass,
    LocalCoalescingPass,
    OptimizationResult,
    PassManager,
    PeepholePass,
    UnusedLocalPass,
    optimize_module,
    run_differential,
)
from repro.wasm import (
    Binop,
    Const,
    Cvtop,
    LocalGet,
    LocalSet,
    LocalTee,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmInterpreter,
    WasmModule,
    WBlock,
    WBr,
    WDrop,
    WNop,
    WReturn,
    WUnreachable,
    count_instrs,
    validate_module,
)
from repro.wasm.interpreter import WasmTrap

from bench_pipelines import l3_workload, ml_workload


O2 = CompileConfig(opt_level="O2", cache="none")


def make_wasm(body, params=(), results=(ValType.I32,), locals=(), export="main"):
    function = WasmFunction(
        WasmFuncType(tuple(params), tuple(results)), tuple(locals), tuple(body), exports=(export,)
    )
    return WasmModule(functions=(function,))


def run(module, export="main", args=()):
    validate_module(module)
    interp = WasmInterpreter()
    instance = interp.instantiate(module)
    return interp.invoke(instance, export, list(args))


class TestPassManager:
    def test_named_ordered_and_rerunnable(self):
        module = make_wasm([Const(ValType.I32, 2), Const(ValType.I32, 3), Binop(ValType.I32, "add")])
        manager = PassManager()
        first = manager.run(module)
        second = manager.run(first.module)  # re-runnable, already at fixpoint
        assert [s.name for s in first.stats] == [
            "dce", "flatten", "coalesce", "copyprop", "constfold", "peephole", "deadlocals", "deadfuncs",
        ]
        assert second.instructions_before == second.instructions_after

    def test_per_pass_statistics(self):
        module = make_wasm([Const(ValType.I32, 2), Const(ValType.I32, 3), Binop(ValType.I32, "add")])
        result = PassManager().run(module)
        by_name = {s.name: s for s in result.stats}
        assert by_name["constfold"].rewrites >= 1
        assert all(s.runs >= 1 for s in result.stats)
        assert result.instructions_removed == 2

    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(ValueError):
            PassManager([PeepholePass(), PeepholePass()])

    def test_custom_pipeline_subset(self):
        module = make_wasm([WNop(), Const(ValType.I32, 1)])
        result = PassManager([PeepholePass()]).run(module)
        assert result.instructions_after == 1
        assert [s.name for s in result.stats] == ["peephole"]

    def test_result_is_validated(self):
        module = make_wasm([Const(ValType.I32, 7)])
        result = optimize_module(module)
        validate_module(result.module)  # also validated internally
        assert run(result.module) == [7]


class TestConstantFolding:
    def fold(self, body, **kwargs):
        module = make_wasm(body, **kwargs)
        return PassManager([ConstantFoldingPass()]).run(module)

    def test_binop_chain_folds_to_one_const(self):
        result = self.fold([
            Const(ValType.I32, 2), Const(ValType.I32, 3), Binop(ValType.I32, "add"),
            Const(ValType.I32, 10), Binop(ValType.I32, "mul"),
        ])
        assert result.instructions_after == 1
        assert run(result.module) == [50]

    def test_folding_uses_wrapping_semantics(self):
        result = self.fold([
            Const(ValType.I32, 0xFFFFFFFF), Const(ValType.I32, 1), Binop(ValType.I32, "add"),
        ])
        assert run(result.module) == [0]

    def test_trapping_division_not_folded(self):
        result = self.fold([
            Const(ValType.I32, 1), Const(ValType.I32, 0), Binop(ValType.I32, "div_u"),
        ])
        assert result.instructions_after == 3  # left in place
        with pytest.raises(WasmTrap):
            run(result.module)

    def test_relop_and_testop_fold(self):
        from repro.wasm import Relop, Testop

        result = self.fold([
            Const(ValType.I32, 3), Const(ValType.I32, 5), Relop(ValType.I32, "lt_s"),
            Testop(ValType.I32),
        ])
        assert result.instructions_after == 1
        assert run(result.module) == [0]

    def test_signed_relop_folds_signedly(self):
        from repro.wasm import Relop

        result = self.fold([
            Const(ValType.I32, -1), Const(ValType.I32, 1), Relop(ValType.I32, "lt_s"),
        ])
        assert run(result.module) == [1]  # -1 < 1 signed

    def test_cvtop_folds(self):
        result = self.fold(
            [Const(ValType.I64, 0x1_FFFF_FFFF), Cvtop(ValType.I32, "wrap", ValType.I64)],
        )
        assert result.instructions_after == 1
        assert run(result.module) == [0xFFFFFFFF]

    def test_constant_condition_selects_if_branch(self):
        from repro.wasm import WIf

        body = [
            Const(ValType.I32, 1),
            WIf(WasmFuncType((), (ValType.I32,)), (Const(ValType.I32, 10),), (Const(ValType.I32, 20),)),
        ]
        result = PassManager().run(make_wasm(body))
        assert run(result.module) == [10]
        assert result.instructions_after == 1


class TestDeadCode:
    def test_code_after_terminator_dropped(self):
        body = [
            Const(ValType.I32, 1), WReturn(),
            Const(ValType.I32, 2), Const(ValType.I32, 3), Binop(ValType.I32, "add"), WDrop(),
        ]
        result = PassManager([DeadCodeEliminationPass()]).run(make_wasm(body))
        assert result.instructions_after == 1  # trailing return is dropped too
        assert run(result.module) == [1]

    def test_unreachable_kept_but_tail_dropped(self):
        body = [WUnreachable(), Const(ValType.I32, 2), WDrop()]
        result = PassManager([DeadCodeEliminationPass()]).run(make_wasm(body, results=()))
        assert result.instructions_after == 1

    def test_dead_store_becomes_drop_then_disappears(self):
        body = [Const(ValType.I32, 5), LocalSet(0), Const(ValType.I32, 1)]
        result = PassManager().run(make_wasm(body, locals=[ValType.I32]))
        assert result.instructions_after == 1
        function = result.module.functions[0]
        assert function.locals == ()  # the local itself was pruned
        assert run(result.module) == [1]

    def test_unused_locals_pruned_and_renumbered(self):
        body = [Const(ValType.I32, 9), LocalSet(2), LocalGet(2), WReturn()]
        module = make_wasm(body, locals=[ValType.I64, ValType.F64, ValType.I32])
        result = PassManager([UnusedLocalPass()]).run(module)
        function = result.module.functions[0]
        assert function.locals == (ValType.I32,)
        assert function.body[1] == LocalSet(0)
        assert run(result.module) == [9]


class TestPeephole:
    def run_pass(self, body, **kwargs):
        return PassManager([PeepholePass()]).run(make_wasm(body, **kwargs))

    def test_set_get_fuses_to_tee(self):
        body = [Const(ValType.I32, 4), LocalSet(0), LocalGet(0)]
        result = self.run_pass(body, locals=[ValType.I32])
        assert result.module.functions[0].body == (Const(ValType.I32, 4), LocalTee(0))
        assert run(result.module) == [4]

    def test_pure_producer_drop_eliminated(self):
        body = [Const(ValType.I32, 1), Const(ValType.I32, 2), WDrop()]
        result = self.run_pass(body)
        assert result.instructions_after == 1
        assert run(result.module) == [1]

    def test_identity_conversion_pair_removed(self):
        body = [
            LocalGet(0),
            Cvtop(ValType.I64, "extend_u", ValType.I32),
            Cvtop(ValType.I32, "wrap", ValType.I64),
        ]
        result = self.run_pass(body, params=[ValType.I32])
        assert result.instructions_after == 1
        # Differentially: identical even for args that exercise the sign bit.
        report = run_differential(
            make_wasm(body, params=[ValType.I32]), result.module,
            [("main", (0xFFFFFFFB,)), ("main", (-5,)), ("main", (7,))],
        )
        assert report.ok

    def test_spill_reload_swap_replaced_by_reordered_producers(self):
        body = [
            LocalGet(0), Const(ValType.I32, 3),
            LocalSet(1), LocalSet(2),
            LocalGet(1), LocalGet(2),
            Binop(ValType.I32, "sub"),
        ]
        module = make_wasm(body, params=[ValType.I32], locals=[ValType.I32, ValType.I32])
        result = PassManager().run(module)
        assert result.module.functions[0].locals == ()
        assert run(result.module, args=[10]) == [numerics_sub(3, 10)]
        report = run_differential(module, result.module, [("main", (10,)), ("main", (0,))])
        assert report.ok


def numerics_sub(a, b):
    from repro.core.semantics import numerics

    return numerics.int_sub(a, b, 32)


class TestLocalCoalescing:
    def test_i32_bank_local_retyped_and_conversions_removed(self):
        body = [
            LocalGet(0),
            Cvtop(ValType.I64, "extend_u", ValType.I32), LocalSet(1),
            LocalGet(1), Cvtop(ValType.I32, "wrap", ValType.I64),
        ]
        module = make_wasm(body, params=[ValType.I32], locals=[ValType.I64])
        result = PassManager([LocalCoalescingPass()]).run(module)
        function = result.module.functions[0]
        assert function.locals == (ValType.I32,)
        assert not any(isinstance(i, Cvtop) for i in function.body)
        report = run_differential(module, result.module, [("main", (5,)), ("main", (-5,)), ("main", (0,))])
        assert report.ok

    def test_mixed_type_local_left_alone(self):
        # The local holds an i32 and later a raw i64: no consistent retyping.
        body = [
            LocalGet(0), Cvtop(ValType.I64, "extend_u", ValType.I32), LocalSet(1),
            Const(ValType.I64, 1 << 40), LocalSet(1),
            LocalGet(1), Cvtop(ValType.I32, "wrap", ValType.I64),
        ]
        module = make_wasm(body, params=[ValType.I32], locals=[ValType.I64])
        result = PassManager([LocalCoalescingPass()]).run(module)
        assert result.module.functions[0].locals == (ValType.I64,)

    def test_f64_bank_roundtrip_coalesced(self):
        body = [
            LocalGet(0), Cvtop(ValType.I64, "reinterpret", ValType.F64), LocalSet(1),
            LocalGet(1), Cvtop(ValType.F64, "reinterpret", ValType.I64),
        ]
        module = make_wasm(body, params=[ValType.F64], results=[ValType.F64], locals=[ValType.I64])
        result = PassManager([LocalCoalescingPass()]).run(module)
        assert result.module.functions[0].locals == (ValType.F64,)
        report = run_differential(module, result.module, [("main", (2.5,)), ("main", (-0.0,))])
        assert report.ok


class TestFlattenAndDeadFunctions:
    def test_untargeted_block_flattened(self):
        body = [WBlock(WasmFuncType((), (ValType.I32,)), (Const(ValType.I32, 3),))]
        result = PassManager([BlockFlatteningPass()]).run(make_wasm(body))
        assert result.module.functions[0].body == (Const(ValType.I32, 3),)

    def test_branch_target_block_kept(self):
        body = [
            WBlock(WasmFuncType((), ()), (WBr(0),)),
            Const(ValType.I32, 1),
        ]
        result = PassManager([BlockFlatteningPass()]).run(make_wasm(body))
        assert isinstance(result.module.functions[0].body[0], WBlock)
        assert run(result.module) == [1]

    def test_unreachable_function_stubbed(self):
        dead = WasmFunction(WasmFuncType((), ()), (), (WNop(),) * 10, name="dead")
        live = WasmFunction(WasmFuncType((), (ValType.I32,)), (), (Const(ValType.I32, 1),), exports=("main",))
        module = WasmModule(functions=(dead, live))
        result = PassManager([DeadFunctionPass()]).run(module)
        assert result.module.functions[0].body == (WUnreachable(),)
        assert run(result.module) == [1]

    def test_ml_module_free_is_dead(self):
        lowered = compile_ml_module(ml_workload(), config=O2)
        free_index = lowered.runtime.free_index
        assert lowered.wasm.functions[free_index].body == (WUnreachable(),)


class TestDifferentialHarness:
    def test_detects_a_miscompiled_module(self):
        good = make_wasm([LocalGet(0), Const(ValType.I32, 1), Binop(ValType.I32, "add")], params=[ValType.I32])
        bad = make_wasm([LocalGet(0), Const(ValType.I32, 2), Binop(ValType.I32, "add")], params=[ValType.I32])
        report = run_differential(good, bad, [("main", (1,))])
        assert not report.ok
        assert len(report.mismatches()) == 1
        assert "MISMATCH" in report.format_report()

    def test_matching_traps_are_equal(self):
        trapping = make_wasm([WUnreachable()], results=())
        report = run_differential(trapping, trapping, [("main", ())])
        assert report.ok

    def test_counter_program_differential(self):
        program = Program(counter_program().modules())
        plain = program.lower()
        optimized = program.lower(config=O2)
        calls = [("client.client_init", (0,))] + [("client.client_tick", (0,))] * 5 + [
            ("client.client_total", (0,)),
        ]
        report = run_differential(plain.wasm, optimized.wasm, calls)
        assert report.ok
        # and the final call observes the same count on the optimized module
        assert report.outcomes[-1].candidate == [5]


class TestPipelineIntegration:
    def test_compile_ml_module_optimize_flag(self):
        lowered = compile_ml_module(ml_workload(), config=O2)
        assert isinstance(lowered, LoweredModule)
        assert isinstance(lowered.optimization, OptimizationResult)
        interp = WasmInterpreter()
        instance = interp.instantiate(lowered.wasm)
        assert interp.invoke(instance, "pipeline", [21]) == [42]

    def test_compile_l3_module_optimize_flag(self):
        lowered = compile_l3_module(l3_workload(), config=O2)
        assert isinstance(lowered, LoweredModule)
        interp = WasmInterpreter()
        instance = interp.instantiate(lowered.wasm)
        assert interp.invoke(instance, "churn", [9]) == [10]

    def test_lower_module_optimize_flag(self):
        richwasm = compile_ml_module(ml_workload())
        plain = lower_module(richwasm)
        optimized = lower_module(richwasm, config=O2)
        assert optimized.optimization is not None
        assert optimized.wasm.instruction_count() < plain.wasm.instruction_count()

    def test_instruction_reduction_meets_target_on_pipeline_workloads(self):
        """Acceptance: >= 20% instruction-count reduction on the ML and L3
        pipeline workloads, with differential agreement."""

        for workload, export, args in (
            (compile_ml_module(ml_workload()), "pipeline", [(21,), (0,), (100,), (7,)]),
            (compile_l3_module(l3_workload()), "churn", [(9,), (0,), (1000,)]),
        ):
            lowered = lower_module(workload)
            result = optimize_module(lowered.wasm)
            assert result.reduction >= 0.20, result.format_report()
            report = run_differential(lowered.wasm, result.module, [(export, a) for a in args])
            assert report.ok, report.format_report()

    def test_metrics_delta_report(self):
        from repro.analysis import format_optimization_report, optimization_delta

        richwasm = compile_ml_module(ml_workload())
        plain = lower_module(richwasm)
        optimized = lower_module(richwasm, config=O2)
        delta = optimization_delta(plain.wasm, optimized.wasm, name="ml-pipeline")
        assert delta.removed > 0
        report = format_optimization_report([delta])
        assert "ml-pipeline" in report and "TOTAL" in report
