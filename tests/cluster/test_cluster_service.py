"""ClusterService behaviour: routing, stickiness, parity with the
in-process service, trap isolation over the wire, backpressure, and
worker-death recovery."""

import time

import pytest

from repro import api
from repro.cluster import (
    ClusterQueueFull,
    ClusterService,
    TRAP_KIND_WORKER_DIED,
)
from repro.ffi import counter_program
from repro.runtime import Request, Session
from repro.wasm.interpreter import WasmTrap

ENGINES = ("tree", "flat", "compiled")


def _session(value, ticks=4, session_id=None):
    calls = (
        (("client.client_init", (value,)),)
        + tuple(("client.client_tick", ()) for _ in range(ticks))
        + (("client.client_total", ()),)
    )
    return Session(calls=calls, session_id=session_id)


@pytest.fixture(scope="module")
def cluster():
    with api.serve(counter_program(), {"cache": "private", "workers": 2}) as service:
        yield service


class TestSurface:
    def test_serve_workers_1_stays_in_process(self):
        service = api.serve(counter_program(), {"cache": "private", "workers": 1})
        assert not isinstance(service, ClusterService)

    def test_serve_workers_n_returns_cluster(self, cluster):
        assert isinstance(cluster, ClusterService)
        assert cluster.workers == 2
        assert "client.client_init" in cluster.exports

    def test_call_matches_in_process_and_resolves_leniently(self, cluster):
        # client_init returns no values — same surface as the in-process
        # service (parity matters more than the particular shape).
        with api.serve(counter_program(), {"cache": "private"}) as single:
            assert cluster.call("client.client_init", [5]) == single.call(
                "client.client_init", [5]
            )
            # The same export table and resolution as the in-process service.
            assert cluster.exports == single.exports
            assert cluster.resolve("client_init") == single.resolve("client_init")

    def test_call_raises_wasm_trap(self, cluster):
        with pytest.raises(WasmTrap, match="step budget"):
            cluster.call("client.client_init", [1], max_steps=1)

    def test_diagnostics_surface(self, cluster):
        assert cluster.diagnostics is not None


class TestRoutingAndParity:
    def test_sticky_sessions_route_to_one_worker(self, cluster):
        dispatcher = cluster.dispatcher
        slots = {dispatcher.route(_session(1, session_id="user-a")) for _ in range(10)}
        assert len(slots) == 1
        other = {dispatcher.route(_session(1, session_id=f"u{i}")) for i in range(32)}
        assert other == {0, 1}  # ids spread across both workers

    def test_round_robin_spreads_stateless_requests(self, cluster):
        dispatcher = cluster.dispatcher
        slots = [dispatcher.route(Request("client.client_total", ())) for _ in range(4)]
        assert sorted(set(slots)) == [0, 1]

    def test_sticky_session_state_isolated_per_worker(self, cluster):
        # Two sessions pinned to (possibly) different workers each see their
        # own counter state; re-running one id yields its own fresh pooled
        # instance each time (sessions are stateful within, not across).
        first = cluster.session(_session(10, session_id="pin-1").calls, session_id="pin-1")
        second = cluster.session(_session(20, session_id="pin-2").calls, session_id="pin-2")
        assert first.ok and second.ok
        assert first.values[-1] == [14]
        assert second.values[-1] == [24]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_three_engine_parity_with_in_process_service(self, engine):
        sessions = [_session(i, session_id=f"s{i}") for i in range(4)]
        with api.serve(counter_program(), {"cache": "private", "engine": engine}) as single:
            baseline = single.run([_session(i, session_id=f"s{i}") for i in range(4)])
        with api.serve(
            counter_program(), {"cache": "private", "engine": engine, "workers": 2}
        ) as clustered:
            report = clustered.run(sessions)
        assert baseline.ok_count == report.ok_count == 4
        assert [o.values for o in baseline.outcomes] == [o.values for o in report.outcomes]
        assert [o.steps for o in baseline.outcomes] == [o.steps for o in report.outcomes]


class TestTrapIsolation:
    def test_trap_comes_back_typed_and_isolated(self, cluster):
        report = cluster.run([
            _session(7, session_id="iso-a"),
            Request("client.client_init", (1,), 2),  # blown step budget
            _session(7, session_id="iso-b"),
        ])
        ok_outcomes = [o for o in report.outcomes if o.ok]
        trapped = [o for o in report.outcomes if not o.ok]
        assert len(ok_outcomes) == 2 and len(trapped) == 1
        assert trapped[0].trap_kind == "step_budget"
        assert ok_outcomes[0].values == ok_outcomes[1].values

    def test_unknown_export_is_worker_error_not_crash(self, cluster):
        # Export resolution is parent-side, so force a bogus name through
        # the dispatcher directly: the worker reports a protocol error and
        # keeps serving.
        outcome = cluster.dispatcher.run_one(Request("no.such_export", ()))
        assert not outcome.ok
        assert outcome.trap_kind == "worker_error"
        followup = cluster.session(_session(3).calls, session_id="after-error")
        assert followup.ok and followup.values[-1] == [7]


class TestBackpressure:
    def test_fail_mode_raises_cluster_queue_full(self):
        with api.serve(counter_program(), {"cache": "private", "workers": 2}) as service:
            service.dispatcher.backpressure = "fail"
            service.pool.queue_depth = 1
            # Refill the slot-0 queue faster than the worker drains it.
            # queue_depth was set post-hoc only for the error message; the
            # real bound is the mp.Queue's maxsize (32), so saturate it.
            slot0 = Session(calls=(("client.client_init", (1,)),), session_id=None)
            with pytest.raises(ClusterQueueFull):
                for _ in range(200):
                    service.dispatcher.submit(slot0)

    def test_block_mode_run_completes_past_queue_depth(self):
        with ClusterService(
            api.compile(counter_program(), {"cache": "private"}),
            api.CompileConfig(workers=2, cache="private"),
            queue_depth=2,
        ) as service:
            report = service.run([_session(i, session_id=f"bp{i}") for i in range(12)])
        assert report.ok_count == 12


class TestWorkerDeath:
    def test_kill_mid_stream_fails_typed_then_respawns(self):
        with api.serve(counter_program(), {"cache": "private", "workers": 2}) as service:
            dispatcher = service.dispatcher
            victim_session = _session(1, ticks=50_000, session_id="victim")
            slot = dispatcher.route(victim_session)
            handle = service.pool.handles[slot]
            request_id = dispatcher.submit(victim_session)
            time.sleep(0.2)  # let the worker pick the session up mid-stream
            handle.process.kill()
            outcome = dispatcher.collect(request_id)
            assert not outcome.ok
            assert outcome.trap_kind == TRAP_KIND_WORKER_DIED
            assert "died" in outcome.trap
            assert service.pool.respawns == 1

            # Only the dead worker's in-flight request failed: the respawned
            # slot (same sticky id) and the surviving slot both serve again.
            service.pool.wait_ready()
            retry = service.session(
                _session(3, session_id="victim").calls, session_id="victim"
            )
            assert retry.ok and retry.values[-1] == [7]
            other = service.run([_session(i, session_id=f"after{i}") for i in range(4)])
            assert other.ok_count == 4

    def test_crash_op_kills_worker_without_cleanup(self):
        # The deterministic fault injection the wire protocol ships with.
        with api.serve(counter_program(), {"cache": "private", "workers": 2}) as service:
            handle = service.pool.handles[0]
            pid_before = handle.process.pid
            handle.queue.put({"op": "crash"})
            handle.process.join(timeout=10)
            assert not handle.alive
            # The next submit to that slot reaps + respawns transparently.
            outcome = service.dispatcher.run_one(
                _session(2, session_id="zz") if service.dispatcher.route(_session(2, session_id="zz")) == 0
                else Request("client.client_init", (2,))
            )
            assert outcome.ok
            assert service.pool.respawns >= 1
            live = [h.process.pid for h in service.pool.handles if h.alive]
            assert len(live) == 2 and pid_before not in live


class TestStats:
    def test_stats_aggregate_workers_and_metrics(self, cluster):
        cluster.run([_session(i, session_id=f"st{i}") for i in range(4)])
        stats = cluster.stats()
        assert set(stats.workers) == {0, 1}
        for record in stats.workers.values():
            assert record["pid"] > 0
            assert "pool" in record and "metrics" in record
        merged = {entry["name"]: entry for entry in stats.metrics}
        assert "runtime.requests" in merged
        per_worker_total = sum(
            entry["value"]
            for record in stats.workers.values()
            for entry in record["metrics"]
            if entry["name"] == "runtime.requests"
        )
        assert merged["runtime.requests"]["value"] == per_worker_total
