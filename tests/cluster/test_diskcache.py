"""DiskCache durability contract: atomicity, corruption tolerance, LRU,
version stamping, and the cross-process warm start through ModuleCache."""

import json
import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

from repro.api import CompileConfig
from repro.cluster import DISK_FORMAT, DiskCache
from repro.runtime import ModuleCache

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.put("lower", "k" * 64, {"payload": [1, 2, 3]})
        assert cache.get("lower", "k" * 64) == {"payload": [1, 2, 3]}
        stats = cache.stats["disk.lower"]
        assert (stats.hits, stats.misses, stats.evictions) == (1, 0, 0)

    def test_absent_key_is_a_miss_without_eviction(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("lower", "absent" * 11) is None
        stats = cache.stats["disk.lower"]
        assert (stats.hits, stats.misses, stats.evictions) == (0, 1, 0)

    def test_entries_and_total_bytes(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("link", "a" * 64, b"x" * 100)
        cache.put("lower", "b" * 64, b"y" * 100)
        entries = cache.entries()
        assert {entry.stage for entry in entries} == {"link", "lower"}
        assert cache.total_bytes() == sum(entry.size for entry in entries) > 0

    def test_clear_removes_entries_and_resets_stats(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("link", "a" * 64, 1)
        cache.get("link", "a" * 64)
        cache.clear()
        assert cache.entries() == []
        assert cache.stats["disk.link"].hits == 0


class TestConcurrency:
    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path):
        # Many threads race to publish the same key; every interleaving must
        # leave a complete, readable entry (temp file + os.replace).
        cache = DiskCache(tmp_path)
        key = "c" * 64
        payload = list(range(2000))
        errors = []

        def writer():
            try:
                for _ in range(20):
                    assert cache.put("program", key, payload)
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.get("program", key) == payload
        # No leftover temp files from the races.
        assert not list(tmp_path.rglob("*.tmp"))


class TestCorruption:
    def _entry_path(self, cache, stage, key):
        cache.put(stage, key, "seed")
        (entry,) = cache.entries()
        return entry.path

    def test_truncated_entry_is_miss_and_evicted(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, "lower", "t" * 64)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("lower", "t" * 64) is None
        assert not path.exists()
        stats = cache.stats["disk.lower"]
        assert stats.misses == 1 and stats.evictions == 1

    def test_garbage_bytes_are_miss_and_evicted(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, "lower", "g" * 64)
        path.write_bytes(b"not a pickle at all")
        assert cache.get("lower", "g" * 64) is None
        assert not path.exists()

    def test_unpicklable_payload_put_returns_false(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.put("lower", "u" * 64, lambda: None) is False
        assert cache.entries() == []

    def test_format_version_mismatch_is_miss_and_evicted(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, "lower", "v" * 64)
        stale = {"format": DISK_FORMAT + 1, "stage": "lower", "key": "v" * 64, "payload": 1}
        path.write_bytes(pickle.dumps(stale))
        assert cache.get("lower", "v" * 64) is None
        assert not path.exists()

    def test_stage_or_key_mismatch_is_miss_and_evicted(self, tmp_path):
        # A well-formed entry filed under the wrong name (e.g. a collision
        # or a renamed directory) must not be served.
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, "lower", "w" * 64)
        impostor = {"format": DISK_FORMAT, "stage": "link", "key": "w" * 64, "payload": 1}
        path.write_bytes(pickle.dumps(impostor))
        assert cache.get("lower", "w" * 64) is None
        assert not path.exists()


class TestEviction:
    def test_lru_evicts_oldest_mtime_first(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=10_000_000)  # no eviction yet
        cache.put("lower", "a" * 64, b"x" * 400)
        cache.put("lower", "b" * 64, b"x" * 400)
        cache.put("lower", "c" * 64, b"x" * 400)
        # Age the entries deterministically: a oldest, c newest ...
        now = time.time()
        for index, key in enumerate(("a", "b", "c")):
            path = cache._path("lower", key * 64)
            os.utime(path, (now - 300 + index * 100, now - 300 + index * 100))
        # ... then touch a via a read: it becomes most-recently-used.
        assert cache.get("lower", "a" * 64) is not None
        per_entry = cache.total_bytes() // 3
        cache.max_bytes = per_entry * 2 + 10
        cache._evict_over_budget()
        kept = {entry.key for entry in cache.entries()}
        assert kept == {"a" * 64, "c" * 64}  # b had the oldest clock
        assert cache.stats["disk.lower"].evictions == 1

    def test_budget_enforced_on_put(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1)
        cache.put("lower", "a" * 64, b"x" * 400)
        cache.put("lower", "b" * 64, b"x" * 400)
        assert len(cache.entries()) <= 1

    def test_rejects_non_positive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(tmp_path, max_bytes=0)


class TestModuleCacheTiering:
    def test_lower_misses_memory_then_hits_disk(self, tmp_path):
        from repro.ffi import counter_program

        modules = counter_program().modules()
        first = ModuleCache(disk=DiskCache(tmp_path))
        first.compile_program(modules, config=CompileConfig(cache="private"))
        assert first.disk.stats["disk.program"].misses >= 1

        # A second ModuleCache over the same directory models a fresh
        # process: its memory tier is empty, the disk tier is warm.
        second = ModuleCache(disk=DiskCache(tmp_path))
        second.compile_program(modules, config=CompileConfig(cache="private"))
        assert second.disk.stats["disk.program"].hits == 1
        assert second.stats["program"].hits == 1

    def test_subprocess_warm_start_hits_disk_stages(self, tmp_path):
        # The real thing: a genuinely cold process (no fork inheritance)
        # compiling against the warm directory must hit the disk tier and
        # report the compile as cached.
        script = """
import json, sys
sys.path.insert(0, {src!r})
from repro import api
from repro.ffi import counter_program
compiled = api.compile(counter_program(), {{"cache_dir": {cache_dir!r}}})
diag = compiled.diagnostics
print(json.dumps({{"program": diag.cache["program"]}}))
""".format(src=os.path.abspath(REPO_SRC), cache_dir=str(tmp_path))
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True, text=True
            )
            assert proc.returncode == 0, proc.stderr
            runs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert runs[0]["program"] == "miss"
        assert runs[1]["program"] == "hit"
