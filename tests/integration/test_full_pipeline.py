"""Integration tests: the full pipeline from source languages to Wasm."""

import pytest

from repro.analysis import SafetyHarness
from repro.core.semantics import Interpreter
from repro.core.syntax import NumType, NumV, UnitV
from repro.core.typing import check_module
from repro.ffi import Program, counter_program, fig3_programs
from repro.ffi.link import link_modules
from repro.lower import lower_module
from repro.ml import (
    App,
    Assign,
    BinOp,
    Deref,
    IntLit,
    Lam,
    Let,
    MkRef,
    MLFunction,
    MLGlobal,
    Seq,
    TInt,
    TRef,
    TUnit,
    Var,
    compile_ml_module,
    ml_module,
)
from repro.l3 import (
    L3Function,
    LBang,
    LBangI,
    LBinOp,
    LFree,
    LInt,
    LLet,
    LLetPair,
    LNew,
    LSwap,
    LVar,
    compile_l3_module,
    l3_module,
)
from repro.wasm import WasmInterpreter, validate_module


class TestMLPipeline:
    """ML source → RichWasm → type check → interpret → lower → Wasm → run."""

    def build(self):
        return ml_module(
            "bank",
            globals=[MLGlobal("balance", TRef(TInt()), MkRef(IntLit(0)))],
            functions=[
                MLFunction("deposit", "x", TInt(), TInt(),
                           Seq(Assign(Var("balance"), BinOp("+", Deref(Var("balance")), Var("x"))),
                               Deref(Var("balance")))),
                MLFunction("with_bonus", "x", TInt(), TInt(),
                           Let("bonus", Lam("y", TInt(), BinOp("+", Var("y"), IntLit(10))),
                               App(Var("bonus"), App(Var("deposit"), Var("x"))))),
            ],
        )

    def test_full_pipeline_agreement(self):
        richwasm = compile_ml_module(self.build())
        check_module(richwasm)

        interp = Interpreter()
        idx = interp.instantiate(richwasm)
        rw1 = interp.invoke_export(idx, "deposit", [NumV(NumType.I32, 100)]).values[0].value
        rw2 = interp.invoke_export(idx, "with_bonus", [NumV(NumType.I32, 50)]).values[0].value

        lowered = lower_module(richwasm)
        validate_module(lowered.wasm)
        wi = WasmInterpreter()
        inst = wi.instantiate(lowered.wasm)
        wi.invoke(inst, "_init")
        w1 = wi.invoke(inst, "deposit", [100])[0]
        w2 = wi.invoke(inst, "with_bonus", [50])[0]
        assert (rw1, rw2) == (w1, w2) == (100, 160)


class TestL3Pipeline:
    def test_manual_memory_management_pipeline(self):
        module = l3_module("buf", functions=[
            L3Function("sum_two_cells", "x", LInt(), LInt(),
                       LLet("a", LNew(LVar("x")),
                            LLet("b", LNew(LIntLit := LBangI(LVar("x")) if False else LVar("x")),
                                 LBinOp("+", LFree(LVar("a")), LFree(LVar("b")))))),
        ])
        # NOTE: "x" is unrestricted (int), so using it twice is legal L3.
        richwasm = compile_l3_module(module)
        check_module(richwasm)
        interp = Interpreter()
        idx = interp.instantiate(richwasm)
        assert interp.invoke_export(idx, "sum_two_cells", [NumV(NumType.I32, 21)]).values[0].value == 42
        assert interp.store.stats()["linear_live"] == 0


class TestCrossLanguagePrograms:
    def test_counter_program_full_stack(self):
        """The Fig. 9 program: separate compilation, FFI check, both backends,
        and the empirical safety harness all agree."""

        scenario = counter_program()
        program = Program(scenario.modules())

        instance = program.instantiate()
        instance.invoke("client", "client_init", [NumV(NumType.I32, 0)])
        for _ in range(6):
            instance.invoke("client", "client_tick", [UnitV()])
        interp_total = instance.invoke("client", "client_total", [UnitV()])[0].value

        wasm = program.instantiate_wasm()
        wasm.invoke("client", "client_init", [0])
        for _ in range(6):
            wasm.invoke("client", "client_tick", [0])
        wasm_total = wasm.invoke("client", "client_total", [0])[0]

        assert interp_total == wasm_total == 6

        linked = link_modules(scenario.modules())
        harness = SafetyHarness()
        report = harness.run_module(linked, [
            ("client.client_init", [NumV(NumType.I32, 0)]),
            ("client.client_tick", [UnitV()]),
            ("client.client_total", [UnitV()]),
        ])
        assert report.ok

    def test_fig3_safe_program_leaves_no_garbage_unaccounted(self):
        _, safe = fig3_programs()
        program = Program(safe.modules())
        instance = program.instantiate()
        instance.invoke("client", "store", [NumV(NumType.I32, 9)])
        assert instance.invoke("client", "take", [UnitV()])[0].value == 9
        stats = instance.store_stats()
        # The linear cell allocated by the client was freed by take().
        assert stats["linear_freed"] >= 1
