"""Tests for :mod:`repro.compilepipe` — function-granular compile units.

The PR 8 layer under :class:`repro.runtime.ModuleCache`: per-function unit
keys (deterministic across processes, like the PR 5 content keys), the
:class:`FunctionUnitCache` LRU store, its stats/obs-counter consistency,
eviction and ``clear()`` interaction with partially-reused modules, and the
``Diagnostics.units`` surface the facade reports reuse through.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.api import CompileConfig, Diagnostics
from repro.compilepipe import (
    UNIT_STAGES,
    FunctionUnitCache,
    UnitStats,
    lower_unit_key,
    translate_unit_key,
    typecheck_unit_key,
    unit_key,
    wasm_signature_digest,
)
from repro.lower import lower_module
from repro.obs.metrics import default_registry
from repro.runtime import ModuleCache

from workloads import edit_one_function, synthetic_module

REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------------
# Unit keys
# ---------------------------------------------------------------------------

_KEY_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {benchmarks!r})
from workloads import synthetic_module
from repro.compilepipe import lower_unit_key, translate_unit_key, typecheck_unit_key
from repro.lower import lower_module

module = synthetic_module(3, functions=4)
wasm = lower_module(module).wasm
print(typecheck_unit_key(module.functions[2], module))
print(lower_unit_key(module.functions[2], module))
print(translate_unit_key(wasm.functions[2], wasm, 2))
"""


def _key_script() -> str:
    return _KEY_SCRIPT.format(
        src=str(REPO_ROOT / "src"), benchmarks=str(REPO_ROOT / "benchmarks")
    )


class TestUnitKeys:
    def test_deterministic_across_fresh_processes(self):
        """Two fresh interpreters derive identical unit keys for every stage
        family — no ``id()``/``hash()`` leaks into the keyspace."""

        runs = [
            subprocess.run(
                [sys.executable, "-c", _key_script()],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.split()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert all(len(key) == 64 and int(key, 16) >= 0 for key in runs[0])

    def test_one_function_edit_leaves_other_keys_unchanged(self):
        base = synthetic_module(2, functions=5)
        edited = edit_one_function(base, 2, blocks=2)
        for index in (0, 1, 3, 4):
            assert lower_unit_key(base.functions[index], base) == lower_unit_key(
                edited.functions[index], edited
            )
        assert lower_unit_key(base.functions[2], base) != lower_unit_key(
            edited.functions[2], edited
        )

    def test_key_ingredients_are_discriminating(self):
        module = synthetic_module(2, functions=2)
        function = module.functions[0]
        assert typecheck_unit_key(function, module) != typecheck_unit_key(
            function, module, allow_caps=False
        )
        assert typecheck_unit_key(function, module) != lower_unit_key(function, module)
        wasm = lower_module(module).wasm
        assert translate_unit_key(wasm.functions[0], wasm, 0) != translate_unit_key(
            wasm.functions[0], wasm, 1
        )
        assert translate_unit_key(wasm.functions[0], wasm, 0) != translate_unit_key(
            wasm.functions[0], wasm, 0, force_list=True
        )

    def test_structurally_equal_twins_share_keys(self):
        first = synthetic_module(2, functions=3)
        second = synthetic_module(2, functions=3)
        assert first is not second
        assert lower_unit_key(first.functions[1], first) == lower_unit_key(
            second.functions[1], second
        )

    def test_unit_key_accepts_raw_digest_parts(self):
        wasm = lower_module(synthetic_module(1)).wasm
        digest = wasm_signature_digest(wasm)
        assert unit_key("probe", digest, 3) == unit_key("probe", digest, 3)
        assert unit_key("probe", digest, 3) != unit_key("probe", digest, 4)


# ---------------------------------------------------------------------------
# The cache itself: stats, eviction, clear
# ---------------------------------------------------------------------------


class TestFunctionUnitCache:
    def test_lookup_counts_one_event_per_get(self):
        units = FunctionUnitCache()
        assert units.get("lower", "k") is None
        units.put("lower", "k", "artifact")
        assert units.get("lower", "k") == "artifact"
        stats = units.stats["lower"]
        assert (stats.reused, stats.compiled, stats.lookups) == (1, 1, 2)

    def test_lru_eviction_is_bounded_and_counted(self):
        units = FunctionUnitCache(max_entries=2)
        for index in range(4):
            units.put("decode", f"k{index}", index)
        assert units.sizes()["decode"] == 2
        assert units.stats["decode"].evicted == 2
        # The two youngest survive; touching one protects it from the next put.
        assert units.get("decode", "k2") == 2
        units.put("decode", "k4", 4)
        assert units.get("decode", "k2") == 2
        assert units.get("decode", "k3") is None

    def test_clear_resets_tables_and_stats(self):
        units = FunctionUnitCache()
        units.put("translate", "k", "chunk")
        units.get("translate", "k")
        units.clear()
        assert len(units) == 0
        assert all(
            (s.reused, s.compiled, s.evicted) == (0, 0, 0) for s in units.stats.values()
        )

    def test_snapshot_delta_reports_only_moved_stages(self):
        units = FunctionUnitCache()
        before = units.snapshot()
        units.put("lower", "k", "v")
        units.get("lower", "k")
        units.get("lower", "missing")
        assert units.delta(before) == {"lower": {"reused": 1, "compiled": 1}}

    def test_stats_agree_with_obs_counter(self):
        """One locked increment path: the integer view and the process-wide
        ``compile.units.events`` counter move together."""

        counter = default_registry().counter("compile.units.events")
        stats = UnitStats("probe-stage")
        base_hits = counter.labeled(stage="probe-stage", event="hit")
        base_misses = counter.labeled(stage="probe-stage", event="miss")
        for event in ("hit", "miss", "hit", "evict"):
            stats.record(event)
        assert (stats.reused, stats.compiled, stats.evicted) == (2, 1, 1)
        assert counter.labeled(stage="probe-stage", event="hit") - base_hits == stats.reused
        assert counter.labeled(stage="probe-stage", event="miss") - base_misses == stats.compiled
        assert counter.labeled(stage="probe-stage", event="evict") == stats.evicted


# ---------------------------------------------------------------------------
# Through the ModuleCache: incremental reuse, eviction, clear
# ---------------------------------------------------------------------------

CONFIG = CompileConfig(opt_level="O1", engine="compiled", cache="private")
N = 8


def _incremental(cache: ModuleCache):
    base = synthetic_module(1, functions=N)
    cache.compile_program(base, config=CONFIG)
    edited = edit_one_function(base, N // 2)
    before = cache.units.snapshot()
    program = cache.compile_program(edited, config=CONFIG)
    return program, cache.units.delta(before)


class TestIncrementalThroughModuleCache:
    def test_one_function_edit_reuses_all_other_units(self):
        program, delta = _incremental(ModuleCache())
        assert delta["lower"] == {"reused": N - 1, "compiled": 1}
        for stage in ("decode", "translate"):
            assert delta[stage]["compiled"] == 1
            assert delta[stage]["reused"] >= N - 1  # + runtime malloc/free
        interpreter, instance = program.instantiate()
        # Function N//2 was re-seeded to N + N//2 + 1; it computes seed + 1.
        assert interpreter.invoke(instance, f"f{N // 2}", [])[0] == N + N // 2 + 2
        assert interpreter.invoke(instance, "main", [])[0] == 2

    def test_partially_reused_module_under_eviction(self):
        # A tiny per-stage bound forces most units out between versions; the
        # recompile must still be correct, just with less reuse.
        cache = ModuleCache()
        cache.units = FunctionUnitCache(max_entries=3)
        program, delta = _incremental(cache)
        assert sum(s.evicted for s in cache.units.stats.values()) > 0
        assert all(size <= 3 for size in cache.units.sizes().values())
        assert delta["lower"]["compiled"] >= 1
        interpreter, instance = program.instantiate()
        assert interpreter.invoke(instance, "main", [])[0] == 2

    def test_clear_resets_units_without_stranding_programs(self):
        cache = ModuleCache()
        program, _delta = _incremental(cache)
        cache.clear()
        assert len(cache.units) == 0
        assert all(s.lookups == 0 for s in cache.units.stats.values())
        # Artifacts already composed into the handed-out program keep working.
        interpreter, instance = program.instantiate()
        assert interpreter.invoke(instance, "main", [])[0] == 2
        # And the next compile rebuilds from nothing: all misses, no hits.
        rebuilt = cache.compile_program(synthetic_module(1, functions=N), config=CONFIG)
        assert cache.units.stats["lower"].compiled == N
        assert cache.units.stats["lower"].reused == 0
        interpreter, instance = rebuilt.instantiate()
        assert interpreter.invoke(instance, "main", [])[0] == 2


# ---------------------------------------------------------------------------
# Diagnostics surface
# ---------------------------------------------------------------------------


class TestDiagnosticsUnits:
    def test_facade_reports_per_stage_unit_reuse(self):
        cache = ModuleCache()
        base = synthetic_module(1, functions=N)
        api.compile(base, CONFIG, cache=cache)
        edited = edit_one_function(base, N // 2)
        program = api.compile(edited, CONFIG, cache=cache)
        units = program.diagnostics.units
        assert units["lower"] == {"reused": N - 1, "compiled": 1}
        report = program.diagnostics.format_report()
        assert f"lower units: {N - 1} reused / 1 compiled" in report

    def test_units_round_trip_through_dict(self):
        diagnostics = Diagnostics(units={"lower": {"reused": 7, "compiled": 1}})
        data = diagnostics.to_dict()
        assert data["units"] == {"lower": {"reused": 7, "compiled": 1}}
        assert Diagnostics.from_dict(data).to_dict() == data

    def test_unit_stages_cover_the_pipeline(self):
        assert UNIT_STAGES == (
            "typecheck", "lower", "optimize", "validate", "decode", "translate",
        )
