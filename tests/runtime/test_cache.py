"""Tests for :class:`repro.runtime.ModuleCache` — per-stage memoization."""

import pytest

from repro.ffi import Program, counter_program, fig3_programs
from repro.runtime import CompiledProgram, ModuleCache, content_key
from repro.wasm import WasmInterpreter, validate_module


@pytest.fixture()
def cache():
    return ModuleCache()


def scenario_modules():
    return counter_program().modules()


class TestContentKey:
    def test_stable_across_structurally_equal_builds(self):
        # Two independent builder invocations produce distinct objects but
        # structurally identical ASTs -> identical keys.
        first = scenario_modules()
        second = scenario_modules()
        assert first["client"] is not second["client"]
        assert content_key(first["client"]) == content_key(second["client"])

    def test_distinguishes_different_programs(self):
        unsafe, safe = fig3_programs()
        assert content_key(unsafe.ml) != content_key(safe.ml)

    def test_parameters_change_the_key(self):
        module = scenario_modules()["client"]
        assert content_key("lower", module, 4, False) != content_key("lower", module, 8, False)


class TestStageMemoization:
    def test_each_stage_compiles_once(self, cache):
        compiled_first = cache.compile_program(scenario_modules())
        compiled_second = cache.compile_program(scenario_modules())
        assert compiled_second is compiled_first
        assert cache.stats["link"].misses == 1
        assert cache.stats["lower"].misses == 1
        assert cache.stats["decode"].misses == 1
        # The second compile short-circuits on the linked-program key after
        # the (memoized) link stage.
        assert cache.stats["link"].hits == 1

    def test_lower_hit_returns_shared_wasm(self, cache):
        linked = cache.link(scenario_modules())
        first = cache.lower(linked)
        second = cache.lower(linked, engine="tree")
        # Shallow copies: bookkeeping may differ, the payload is shared.
        assert first is not second
        assert first.wasm is second.wasm
        assert second.engine == "tree"
        assert cache.stats["lower"] .hits == 1

    def test_decode_shared_across_instances(self, cache):
        # Pin the flat VM: only it materializes instance.decoded (the tree
        # walker, e.g. under REPRO_WASM_ENGINE=tree, has no flat code).
        compiled = cache.compile_program(scenario_modules())
        _, first_instance = compiled.instantiate(engine="flat")
        _, second_instance = compiled.instantiate(engine="flat")
        decoded = compiled.decoded
        for index, flat in enumerate(decoded.flat):
            if flat is not None:
                assert first_instance.decoded[index] is flat
                assert second_instance.decoded[index] is flat

    def test_compile_program_engine_variants_share_payload(self, cache):
        # The engine preference is per-caller: a later caller asking for a
        # different engine must not inherit the first caller's, and must not
        # trigger a recompile either.
        tree = cache.compile_program(scenario_modules(), engine="tree")
        flat = cache.compile_program(scenario_modules(), engine="flat")
        again = cache.compile_program(scenario_modules(), engine="tree")
        assert tree.engine == again.engine == "tree" and flat.engine == "flat"
        assert tree.wasm is flat.wasm  # one compiled payload
        assert cache.stats["lower"].misses == 1
        interpreter, _ = flat.instantiate()
        assert interpreter.engine_name == "flat"
        interpreter, _ = again.instantiate()
        assert interpreter.engine_name == "tree"

    def test_program_compile_reduces_engine_instances_to_names(self, cache):
        from repro.api import CompileConfig
        from repro.wasm import TreeWalkingEngine

        config = CompileConfig(engine=TreeWalkingEngine())
        assert config.engine == "tree"  # configs record names, not live engines
        compiled = Program(scenario_modules()).compile(config=config, cache=cache)
        assert compiled.engine == "tree"
        interpreter, _ = compiled.instantiate()
        assert interpreter.engine_name == "tree"

    def test_optimized_and_unoptimized_are_separate_entries(self, cache):
        plain = cache.compile_program(scenario_modules())
        optimized = cache.compile_program(scenario_modules(), optimize=True)
        assert plain is not optimized
        assert optimized.lowered.optimization is not None
        assert optimized.wasm.instruction_count() < plain.wasm.instruction_count()

    def test_clear_resets_everything(self, cache):
        cache.compile_program(scenario_modules())
        cache.clear()
        assert cache.stats["lower"].lookups == 0
        cache.compile_program(scenario_modules())
        assert cache.stats["lower"].misses == 1


class TestCompiledProgram:
    def test_cached_wasm_is_validated_and_runnable(self, cache):
        compiled = cache.compile_program(scenario_modules())
        validate_module(compiled.wasm)
        interpreter, instance = compiled.instantiate()
        for export in sorted(compiled.wasm.exported_functions()):
            if export.endswith("._init"):
                interpreter.invoke(instance, export)
        interpreter.invoke(instance, "client.client_init", [3])
        interpreter.invoke(instance, "client.client_tick", [])
        assert interpreter.invoke(instance, "client.client_total", []) == [4]

    def test_program_compile_entry_point(self, cache):
        program = Program(scenario_modules())
        compiled = program.compile(cache=cache)
        assert isinstance(compiled, CompiledProgram)
        assert program.compile(cache=cache) is compiled

    def test_program_lower_through_cache_matches_direct(self, cache):
        program = Program(scenario_modules())
        direct = program.lower()
        via_cache = program.lower(cache=cache)
        assert via_cache.wasm == direct.wasm

    def test_instantiate_wasm_through_cache(self, cache):
        program = Program(scenario_modules())
        baseline = program.instantiate_wasm()
        cached_first = program.instantiate_wasm(cache=cache)
        cached_second = program.instantiate_wasm(cache=cache)
        assert cache.stats["lower"].misses == 1
        # The second call short-circuits on the program-level entry, so the
        # lower stage is never re-queried.
        assert cache.stats["program"].hits >= 1
        assert cache.stats["lower"].hits == 0
        baseline.invoke("client", "client_init", [2])
        cached_first.invoke("client", "client_init", [2])
        cached_second.invoke("client", "client_init", [2])
        for instance in (baseline, cached_first, cached_second):
            instance.invoke("client", "client_tick", [])
        assert (
            baseline.invoke("client", "client_total", [])
            == cached_first.invoke("client", "client_total", [])
            == cached_second.invoke("client", "client_total", [])
            == [3]
        )


class TestFrontendCacheThreading:
    @staticmethod
    def _ml_module():
        from repro.ml import BinOp, IntLit, MLFunction, TInt, Var, ml_module

        return ml_module("work", functions=[
            MLFunction("double", "x", TInt(), TInt(), BinOp("*", Var("x"), IntLit(2))),
        ])

    def test_compile_ml_module_lowers_once_via_cache(self, cache):
        from repro.ml import compile_ml_module

        first = compile_ml_module(self._ml_module(), cache=cache)
        second = compile_ml_module(self._ml_module(), cache=cache)
        assert cache.stats["lower"].misses == 1
        assert cache.stats["lower"].hits == 1
        assert first.wasm is second.wasm  # the expensive payload is shared
        interpreter, instance = second.instantiate()
        assert interpreter.invoke(instance, "double", [21]) == [42]

    def test_compile_l3_module_lowers_once_via_cache(self, cache):
        from repro.l3 import (
            L3Function, LBinOp, LFree, LInt, LIntLit, LLet, LLetPair, LNew, LSwap, LVar,
            compile_l3_module, l3_module,
        )

        def build():
            return l3_module("work", functions=[
                L3Function("churn", "x", LInt(), LInt(),
                           LLet("o", LNew(LVar("x")),
                                LLetPair("old", "o2", LSwap(LVar("o"), LIntLit(1)),
                                         LBinOp("+", LVar("old"), LFree(LVar("o2")))))),
            ])

        first = compile_l3_module(build(), cache=cache)
        second = compile_l3_module(build(), cache=cache)
        assert cache.stats["lower"].misses == 1
        assert cache.stats["lower"].hits == 1
        assert first.wasm is second.wasm
        interpreter, instance = second.instantiate()
        assert interpreter.invoke(instance, "churn", [9]) == [10]


class TestTypecheckStage:
    """PR 5: the memoized core-typecheck stage threaded into linking."""

    def test_link_checks_each_module_once(self, cache):
        modules = scenario_modules()
        cache.link(modules)
        # One check per input module plus one for the linked result.
        assert cache.stats["typecheck"].misses == len(modules) + 1
        assert cache.stats["typecheck"].hits == 0
        # Structurally identical modules from a fresh builder re-check nothing
        # (the link stage itself hits, so typecheck is not even consulted).
        cache.link(scenario_modules())
        assert cache.stats["typecheck"].misses == len(modules) + 1

    def test_shared_library_module_checked_once_across_links(self, cache):
        modules = scenario_modules()
        cache.link(modules)
        before = cache.stats["typecheck"].misses
        # A different module set sharing one module: the shared module's
        # check is a hit, only the new set's other checks miss.
        cache.link({"counterlib": modules["counterlib"]}, name="solo")
        assert cache.stats["typecheck"].hits >= 1
        # Only the new linked result itself needed a fresh check.
        assert cache.stats["typecheck"].misses == before + 1

    def test_typecheck_returns_check_result_and_memoizes(self, cache):
        from repro.core.typing import ModuleCheckResult

        linked = cache.link(scenario_modules())
        before_hits = cache.stats["typecheck"].hits
        result = cache.typecheck(linked)
        assert isinstance(result, ModuleCheckResult)
        assert cache.stats["typecheck"].hits == before_hits + 1  # link checked it
        assert cache.typecheck(linked) is result

    def test_ill_typed_module_raises_and_is_not_cached(self, cache):
        from repro.core.syntax import Function, funtype, i32, make_module, Return
        from repro.core.typing.errors import RichWasmTypeError

        bad = make_module(functions=[
            Function(funtype([], [i32()]), (), (Return(),), ("broken",))
        ])
        for _ in range(2):
            with pytest.raises(RichWasmTypeError):
                cache.typecheck(bad)
        assert cache.stats["typecheck"].misses == 2
        assert cache.stats["typecheck"].hits == 0

    def test_clear_resets_typecheck_stage(self, cache):
        linked = cache.link(scenario_modules())
        cache.typecheck(linked)
        cache.clear()
        assert cache.stats["typecheck"].lookups == 0
        cache.typecheck(linked)
        assert cache.stats["typecheck"].misses == 1
