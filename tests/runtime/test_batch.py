"""Tests for :class:`repro.runtime.BatchRunner` — budgets, isolation, stats."""

import pytest

from repro.ffi import counter_program
from repro.runtime import (
    BatchRunner,
    InstancePool,
    ModuleCache,
    Request,
    Session,
    scenario_service,
)
from repro.wasm import (
    Binop,
    Const,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    MemoryGrow,
    StoreI,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmMemory,
    WasmModule,
    WDrop,
    WUnreachable,
    validate_module,
)

I32 = ValType.I32
FT = WasmFuncType


def service_module():
    bump = WasmFunction(FT((I32,), (I32,)), (), (
        GlobalGet(0), LocalGet(0), Binop(I32, "add"), GlobalSet(0), GlobalGet(0),
    ), exports=("bump",))
    dirty = WasmFunction(FT((), (I32,)), (), (
        Const(I32, 1), MemoryGrow(), WDrop(),
        Const(I32, 0), Const(I32, 0xBEEF), StoreI(I32),
        WUnreachable(),
    ), exports=("dirty_then_trap",))
    peek = WasmFunction(FT((), (I32,)), (), (
        Const(I32, 0), Load(I32),
    ), exports=("peek",))
    module = WasmModule(
        functions=(bump, dirty, peek),
        globals=(WasmGlobal(I32, True, (Const(I32, 0),)),),
        memory=WasmMemory(1, 4),
    )
    validate_module(module)
    return module


@pytest.fixture(params=["tree", "flat"])
def runner(request):
    return BatchRunner(InstancePool(service_module(), engine=request.param))


class TestIsolation:
    def test_each_request_starts_fresh(self, runner):
        report = runner.run([("bump", (5,)), ("bump", (5,)), ("bump", (5,))])
        assert report.ok_count == 3
        # No state leaks between requests: every bump sees global 0.
        assert [outcome.values for outcome in report.outcomes] == [[5]] * 3

    def test_trap_is_recorded_and_contained(self, runner):
        report = runner.run([
            Request("dirty_then_trap"),
            Request("peek"),
        ])
        first, second = report.outcomes
        assert not first.ok and first.trap == "unreachable executed"
        # The trapped request grew memory and wrote to it; the next request
        # observes pristine zeroed memory of the original size.
        assert second.ok and second.values == [0]
        assert report.trap_count == 1 and report.ok_count == 1
        assert "TRAP dirty_then_trap" in report.format_report()

    def test_session_keeps_state_within_one_request_only(self, runner):
        session = Session(calls=(("bump", (2,)), ("bump", (3,)), ("bump", (4,))))
        report = runner.run([session, ("bump", (1,))])
        assert report.outcomes[0].values == [[2], [5], [9]]  # stateful inside
        assert report.outcomes[1].values == [1]              # isolated outside


class TestBudgets:
    def test_per_request_budget_traps_only_that_request(self, runner):
        report = runner.run([
            Request("bump", (1,), max_steps=2),   # 5 steps needed: traps
            Request("bump", (1,)),                # unlimited: fine
            Request("bump", (1,), max_steps=50),  # roomy: fine
        ])
        assert [outcome.ok for outcome in report.outcomes] == [False, True, True]
        assert report.outcomes[0].trap == "step budget exhausted"
        # The blown budget costs exactly budget+1 steps (the offending step).
        assert report.outcomes[0].steps == 3

    def test_budgets_do_not_accumulate_across_requests(self, runner):
        # Each request's budget is relative to its own start; recycling the
        # same pooled instance must not eat into later budgets.
        requests = [Request("bump", (1,), max_steps=10)] * 20
        report = runner.run(requests)
        assert report.ok_count == 20
        assert len({outcome.steps for outcome in report.outcomes}) == 1

    def test_pool_level_budget_caps_request_budget(self):
        pool = InstancePool(service_module(), max_steps=3)
        runner = BatchRunner(pool)
        outcome = runner.run_one(Request("bump", (1,), max_steps=1000))
        assert not outcome.ok and outcome.trap == "step budget exhausted"


class TestAggregates:
    def test_report_totals(self, runner):
        report = runner.run([("bump", (1,)), ("dirty_then_trap", ())])
        assert report.requests == 2
        assert report.total_steps == sum(outcome.steps for outcome in report.outcomes)
        assert report.wall_s > 0
        assert report.requests_per_sec > 0
        assert len(report.traps()) == 1

    def test_tuple_requests_with_budget(self, runner):
        report = runner.run([("bump", (1,), 2)])
        assert not report.outcomes[0].ok


class TestScenarioService:
    def test_counter_scenario_end_to_end(self):
        cache = ModuleCache()
        runner = scenario_service(counter_program, cache=cache)
        session = Session(calls=(
            ("client.client_init", (10,)),
            ("client.client_tick", ()),
            ("client.client_tick", ()),
            ("client.client_total", ()),
        ))
        report = runner.run([session] * 3)
        assert report.ok_count == 3
        assert all(outcome.values[-1] == [12] for outcome in report.outcomes)
        # All three requests cost identical steps: pooled resets are exact.
        assert len({outcome.steps for outcome in report.outcomes}) == 1

    def test_accepts_prebuilt_scenario_and_engine(self):
        from repro.api import CompileConfig

        runner = scenario_service(
            counter_program(), cache=ModuleCache(), config=CompileConfig(engine="tree")
        )
        outcome = runner.run_one(Session(calls=(
            ("client.client_init", (1,)), ("client.client_total", ()),
        )))
        assert outcome.ok and outcome.values[-1] == [1]
        assert runner.pool.engine == "tree"
