"""Tests for :class:`repro.runtime.InstancePool` — reset bit-identity.

The pool's contract: a recycled (used-then-reset) instance is
observationally indistinguishable from a freshly instantiated one — results,
trap messages, final memory bytes, globals, and the engine's cumulative
``steps`` counter, on both engines.  This file is the CI enforcement of that
contract, including across every ``max_steps`` budget point the engine
parity suite uses.
"""

import pytest

from repro.opt import run_pool_reset_cross_check
from repro.runtime import InstancePool, ModuleCache, run_initializers_setup
from repro.wasm import (
    Binop,
    Const,
    GlobalGet,
    GlobalSet,
    LocalGet,
    LocalSet,
    MemoryGrow,
    StoreI,
    Testop as WTestop,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmInterpreter,
    WasmMemory,
    WasmModule,
    WasmTrap,
    WBlock,
    WBr,
    WBrIf,
    WDrop,
    WLoop,
    validate_module,
)

I32 = ValType.I32
FT = WasmFuncType

# The budget points used by tests/wasm/test_engines.py::TestMaxStepsParity.
BUDGET_POINTS = [1, 2, 3, 5, 17, 100, 399, 701]


def stateful_module():
    """A module that dirties every resettable surface: it grows memory,
    writes to the grown region, and accumulates into a global."""

    body = (
        Const(I32, 1), MemoryGrow(), WDrop(),
        Const(I32, 70000), LocalGet(0), StoreI(I32),
        GlobalGet(0), LocalGet(0), Binop(I32, "add"), GlobalSet(0),
        GlobalGet(0),
    )
    function = WasmFunction(FT((I32,), (I32,)), (), body, exports=("bump",))
    module = WasmModule(
        functions=(function,),
        globals=(WasmGlobal(I32, True, (Const(I32, 0),)),),
        memory=WasmMemory(1, 8),
    )
    validate_module(module)
    return module


def loop_module(n=100):
    function = WasmFunction(FT((), (I32,)), (I32,), (
        Const(I32, n), LocalSet(0),
        WBlock(FT((), ()), (
            WLoop(FT((), ()), (
                LocalGet(0), WTestop(I32), WBrIf(1),
                LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalSet(0),
                WBr(0),
            )),
        )),
        LocalGet(0),
    ), exports=("main",))
    module = WasmModule(functions=(function,))
    validate_module(module)
    return module


class TestReset:
    def test_reset_restores_memory_globals_and_steps(self):
        pool = InstancePool(stateful_module(), engine="flat")
        entry = pool.acquire()
        baseline_steps = entry.steps
        assert entry.invoke("bump", [5]) == [5]
        assert entry.instance.memory.size_pages() == 2  # grew
        assert entry.instance.globals[0] == 5
        pool.release(entry)

        recycled = pool.acquire()
        assert recycled is entry  # LIFO reuse
        assert recycled.instance.memory.size_pages() == 1  # shrunk back
        assert bytes(recycled.instance.memory.data) == bytes(1 << 16)
        assert recycled.instance.globals[0] == 0
        assert recycled.steps == baseline_steps
        assert recycled.generation == 1
        # And the recycled instance behaves exactly like new.
        assert recycled.invoke("bump", [5]) == [5]

    def test_reset_restores_patched_function_slots(self):
        module = loop_module()
        pool = InstancePool(module, engine="flat")
        entry = pool.acquire()
        original = list(entry.instance.funcs)
        replacement = WasmFunction(FT((), (I32,)), (), (Const(I32, 99),), exports=("main",))
        entry.instance.funcs[0] = replacement
        assert entry.invoke("main") == [99]
        pool.release(entry)
        recycled = pool.acquire()
        assert list(recycled.instance.funcs) == original
        assert recycled.invoke("main") == [0]

    def test_unresettable_instance_is_discarded_not_raised(self):
        # A host (or test) keeping a zero-copy view alive makes the resizing
        # reset impossible; release must swallow that, drop the instance and
        # serve a fresh one next — never blow up a caller's finally block.
        pool = InstancePool(stateful_module(), engine="flat")
        entry = pool.acquire()
        entry.invoke("bump", [1])  # grows memory: reset will need a resize
        leaked_view = entry.instance.memory.read(0, 4)
        pool.release(entry)  # must not raise
        assert pool.stats.reset_failures == 1 and pool.stats.discarded == 1
        assert pool.idle == 0
        leaked_view.release()
        fresh = pool.acquire()
        assert fresh is not entry
        assert fresh.invoke("bump", [2]) == [2]

    def test_pool_capacity_and_stats(self):
        pool = InstancePool(loop_module(), max_size=1)
        first, second = pool.acquire(), pool.acquire()
        assert pool.stats.created == 2 and pool.size == 2
        pool.release(first)
        pool.release(second)  # over capacity: discarded
        assert pool.stats.discarded == 1 and pool.idle == 1
        pool.acquire()
        assert pool.stats.reuses == 1

    def test_warm_precreates_instances(self):
        pool = InstancePool(loop_module(), max_size=3)
        pool.warm(2)
        assert pool.idle == 2 and pool.stats.created == 2
        pool.warm(5)  # clamped to max_size
        assert pool.idle == 3

    def test_engine_instance_rejected(self):
        from repro.wasm import FlatVMEngine

        with pytest.raises(TypeError, match="engine .name."):
            InstancePool(loop_module(), engine=FlatVMEngine())

    def test_setup_runs_once_and_is_part_of_the_image(self):
        cache = ModuleCache()
        from repro.ffi import counter_program

        compiled = cache.compile_program(counter_program().modules())
        pool = compiled.instance_pool(setup=run_initializers_setup)
        entry = pool.acquire()
        image_steps = entry.image.steps
        assert image_steps > 0  # the _init exports ran and were captured
        entry.invoke("client.client_init", [1])
        pool.release(entry)
        recycled = pool.acquire()
        assert recycled.steps == image_steps


class TestPoolResetParity:
    @pytest.mark.parametrize("engine", ["tree", "flat", "compiled"])
    def test_stateful_module_bit_identical(self, engine):
        reports = run_pool_reset_cross_check(
            stateful_module(),
            [("bump", (3,)), ("bump", (4,)), ("bump", (0xFFFFFFFF,))],
            engines=(engine,),
        )
        report = reports[engine]
        assert report.ok, report.format_report()

    @pytest.mark.parametrize("budget", BUDGET_POINTS)
    def test_budget_points_bit_identical(self, budget):
        """Across every max_steps budget the engine-parity suite uses, a
        pooled-reset instance traps (or succeeds) exactly like a fresh one,
        at the same cumulative step count, on every engine."""

        reports = run_pool_reset_cross_check(
            loop_module(),
            [("main", ())],
            max_steps=budget,
        )
        assert set(reports) == {"tree", "flat", "compiled"}
        for engine, report in reports.items():
            assert report.ok, f"budget {budget} ({engine}): {report.format_report()}"
        # The engines also agree with each other.
        baselines = {repr(report.outcomes[0].baseline) for report in reports.values()}
        assert len(baselines) == 1
        assert len({report.baseline_steps for report in reports.values()}) == 1

    def test_trapping_warmup_leaves_no_trace(self):
        # The warm-up run traps mid-way (budget exhausted while memory and
        # globals are already dirty); the reset must still restore the
        # pristine image.
        reports = run_pool_reset_cross_check(
            stateful_module(),
            [("bump", (7,))],
            warmup=[("bump", (1,)), ("bump", (2,)), ("bump", (3,))],
            max_steps=25,
        )
        for engine, report in reports.items():
            assert report.ok, f"{engine}:\n{report.format_report()}"


class TestPoolAcrossEngines:
    @pytest.mark.parametrize("engine", ["tree", "flat", "compiled"])
    def test_pooled_results_match_fresh_interpreter(self, engine):
        module = stateful_module()
        pool = InstancePool(module, engine=engine)
        with pool.instance() as entry:
            pooled = [entry.invoke("bump", [value]) for value in (1, 2, 3)]
        interp = WasmInterpreter(engine=engine)
        instance = interp.instantiate(module)
        fresh = [interp.invoke(instance, "bump", [value]) for value in (1, 2, 3)]
        assert pooled == fresh == [[1], [3], [6]]
