"""Tests for :mod:`repro.parcompile` — parallel per-function compilation.

The correctness contract is identity-by-construction: the parallel layer
only pre-seeds the function-unit cache, and the unchanged serial pipeline
recomposes from the seeds — so a parallel compile must be dataclass- and
content-key-identical to a serial one, survive worker death by recomputing
the lost units serially, keep ``Diagnostics.units`` counts exact (no
double counting across processes), and leave deterministic
:class:`~repro.cluster.DiskCache` entry sets at any worker count.
"""

import os

import pytest

from repro import api, parcompile
from repro.api import CompileConfig, Diagnostics
from repro.api.config import ConfigError
from repro.cluster import DiskCache
from repro.obs.metrics import default_registry
from repro.opt import run_engine_cross_check
from repro.runtime import ModuleCache
from repro.runtime.cache import content_key

from workloads import edit_one_function, synthetic_module

FUNCTIONS = 20


def _config(workers: int, **overrides) -> CompileConfig:
    return CompileConfig(
        opt_level="O1", engine="compiled", cache="private", compile_workers=workers, **overrides
    ).validate()


def _compile(module, workers: int, disk=None):
    cache = ModuleCache(disk=disk)
    program = cache.compile_program(module, config=_config(workers))
    return cache, program


# ---------------------------------------------------------------------------
# Tentpole: bit-identity and cross-engine agreement
# ---------------------------------------------------------------------------


def test_parallel_cold_compile_bit_identical_to_serial():
    module = synthetic_module(1, functions=FUNCTIONS)
    _serial_cache, serial = _compile(module, 1)
    par_cache, parallel = _compile(module, 3)

    assert serial.wasm == parallel.wasm
    assert content_key("wasm", serial.wasm) == content_key("wasm", parallel.wasm)
    assert serial.key == parallel.key

    # Guard against the test passing vacuously through a silent serial
    # fallback: the pool must have actually compiled the units.
    report = par_cache.last_parcompile
    assert report is not None
    assert report.fallbacks == []
    assert report.phases == ["function_units", "translate_units"]
    assert report.worker_deaths == 0
    assert report.units_seeded["lower"] == FUNCTIONS
    assert report.units_seeded["decode"] == FUNCTIONS
    assert report.units_seeded["translate"] >= FUNCTIONS
    assert sum(counts["units"] for counts in report.per_worker.values()) == sum(
        report.units_seeded.values()
    ) + sum(report.units_warm.values())


def test_parallel_artifacts_cross_check_all_engines():
    module = synthetic_module(1, functions=8)
    _cache, program = _compile(module, 2)
    calls = [("main", ()), ("f1", ()), ("f7", ())]
    report = run_engine_cross_check(program.wasm, calls)
    assert report.ok, report.format_report()
    interpreter, instance = program.instantiate()
    # Function i computes seed + 1 with seed = i + 1 (workloads contract).
    assert interpreter.invoke(instance, "main", [])[0] == 2
    assert interpreter.invoke(instance, "f7", [])[0] == 9


def test_parallel_recompile_of_edited_module_matches_serial():
    base = synthetic_module(1, functions=FUNCTIONS)
    edited = edit_one_function(base, FUNCTIONS // 2)

    serial_cache = ModuleCache()
    serial_cache.compile_program(base, config=_config(1))
    serial = serial_cache.compile_program(edited, config=_config(1))

    par_cache = ModuleCache()
    par_cache.compile_program(base, config=_config(2))
    par = par_cache.compile_program(edited, config=_config(2))

    assert serial.wasm == par.wasm
    assert serial.key == par.key
    # Only the edited function misses its units, so the recompile pool fans
    # out exactly one function per phase.
    report = par_cache.last_parcompile
    assert report is not None
    assert report.units_seeded["lower"] == 1
    assert report.units_seeded["translate"] == 1


# ---------------------------------------------------------------------------
# Satellite: worker death must not wedge the parent
# ---------------------------------------------------------------------------


def test_worker_death_recovers_serially_and_is_counted():
    module = synthetic_module(1, functions=FUNCTIONS)
    _serial_cache, serial = _compile(module, 1)

    died_before = default_registry().counter("compile.worker_died").labeled(
        phase="function_units"
    )
    parcompile.CRASH_AFTER_BATCHES[0] = 1  # worker 0 hard-exits after 1 batch
    try:
        par_cache, parallel = _compile(module, 2)
    finally:
        parcompile.CRASH_AFTER_BATCHES.clear()

    # The compile completed, identical to serial: the dead worker's lost
    # units were recomputed by the serial recompose.
    assert serial.wasm == parallel.wasm
    assert serial.key == parallel.key
    report = par_cache.last_parcompile
    assert report.worker_deaths >= 1
    died_after = default_registry().counter("compile.worker_died").labeled(
        phase="function_units"
    )
    assert died_after > died_before


# ---------------------------------------------------------------------------
# Satellite: Diagnostics.units stays exact under parallelism
# ---------------------------------------------------------------------------


def test_parallel_diagnostics_units_match_serial_exactly():
    module = synthetic_module(1, functions=12)
    serial_prog = api.compile({"m": module}, _config(1))
    par_prog = api.compile({"m": module}, _config(2))

    serial_diag: Diagnostics = serial_prog.diagnostics
    par_diag: Diagnostics = par_prog.diagnostics
    # The seeded-fresh replay makes the parent's unit lookups record the
    # same reused/compiled counts a serial compile records — exactly.
    assert par_diag.units == serial_diag.units
    assert serial_diag.parcompile is None
    assert par_diag.parcompile is not None
    assert par_diag.parcompile["workers"] == 2
    assert par_diag.parcompile["worker_deaths"] == 0
    # Round-trips with the rest of the diagnostics payload.
    assert Diagnostics.from_dict(par_diag.to_dict()).parcompile == par_diag.parcompile


def test_seeded_units_replay_worker_outcomes_once():
    from repro.compilepipe import FunctionUnitCache

    units = FunctionUnitCache()
    units.seed("lower", "k-fresh", ("value",), fresh=True)
    units.seed("lower", "k-warm", ("value",), fresh=False)
    assert units.peek("lower", "k-fresh") == ("value",)
    assert units.stats["lower"].lookups == 0  # seeding and peeking count nothing

    assert units.get("lower", "k-fresh") == ("value",)
    assert (units.stats["lower"].reused, units.stats["lower"].compiled) == (0, 1)
    assert units.get("lower", "k-fresh") == ("value",)  # later lookups are reuse
    assert (units.stats["lower"].reused, units.stats["lower"].compiled) == (1, 1)

    assert units.get("lower", "k-warm") == ("value",)  # disk-warm: reuse from the start
    assert (units.stats["lower"].reused, units.stats["lower"].compiled) == (2, 1)


def test_worker_metrics_fold_through_merge_snapshots(tmp_path):
    module = synthetic_module(1, functions=10)
    cache, _program = _compile(module, 2, disk=DiskCache(tmp_path / "units"))
    report = cache.last_parcompile
    assert report is not None and report.fallbacks == []
    # Workers reset inherited telemetry, then their disk-tier unit traffic
    # lands on their own registries; the parent folds the snapshots.
    merged = {record["name"]: record for record in report.merged_metrics}
    events = merged["runtime.cache.events"]
    disk_stages = {entry["labels"].get("stage") for entry in events.get("labels", [])}
    assert any(stage and stage.startswith("disk.unit.") for stage in disk_stages)


# ---------------------------------------------------------------------------
# Satellite: deterministic content keys and disk entry sets per worker count
# ---------------------------------------------------------------------------


def test_determinism_across_worker_counts(tmp_path):
    base = synthetic_module(1, functions=10)
    edited = edit_one_function(base, 5)

    keys = {}
    entry_sets = {}
    for workers in (1, 2, 4):
        disk = DiskCache(tmp_path / f"w{workers}")
        cache = ModuleCache(disk=disk)
        cache.compile_program(base, config=_config(workers))
        program = cache.compile_program(edited, config=_config(workers))
        keys[workers] = program.key
        # The "key" stage is the program-fingerprint shortcut: its disk key
        # hashes pickle *bytes*, which change once digests are cached on the
        # (shared) module objects — construction-history-dependent by design
        # (see ModuleCache.program_key), so it is excluded from the
        # determinism comparison.
        entries = {(entry.stage, entry.key) for entry in disk.entries() if entry.stage != "key"}
        entry_sets[workers] = {
            "module": {e for e in entries if not e[0].startswith(parcompile.UNIT_STAGE_PREFIX)},
            "units": {e for e in entries if e[0].startswith(parcompile.UNIT_STAGE_PREFIX)},
        }

    # Identical content keys at every worker count.
    assert keys[1] == keys[2] == keys[4]
    # The module-level stages (link/lower/program/decode/key) leave the same
    # entries whether compiled serially or in parallel ...
    assert entry_sets[1]["module"] == entry_sets[2]["module"] == entry_sets[4]["module"]
    # ... the serial path publishes no per-function units, and the parallel
    # paths publish the *same* unit set at any worker count.
    assert entry_sets[1]["units"] == set()
    assert entry_sets[2]["units"] == entry_sets[4]["units"]
    assert entry_sets[2]["units"]


def test_parallel_warm_disk_translate_preseeds_without_pool(tmp_path):
    disk = DiskCache(tmp_path / "shared")
    module = synthetic_module(1, functions=8)
    seed_cache = ModuleCache(disk=disk)
    seed_cache.compile_program(module, config=_config(2))

    warm_cache = ModuleCache(disk=disk)
    program = warm_cache.compile_program(module, config=_config(2))
    report = warm_cache.last_parcompile
    # Program came from disk; translate units were rebuilt from the disk
    # wire entries parent-side — every unit warm, no pool phase needed.
    assert report is not None
    assert report.phases == []
    assert report.units_seeded == {}
    assert report.units_warm["translate"] >= 8
    interpreter, instance = program.instantiate()
    assert interpreter.invoke(instance, "main", [])[0] == 2


# ---------------------------------------------------------------------------
# Config surface
# ---------------------------------------------------------------------------


def test_compile_workers_validated_and_excluded_from_content_key():
    for bad in (0, -1, "2", 1.5, True):
        with pytest.raises(ConfigError):
            CompileConfig(compile_workers=bad).validate()
    serial = CompileConfig(opt_level="O1").validate()
    parallel = serial.replace(compile_workers=4)
    # Bookkeeping like `engine`: any worker count compiles the same artifact.
    assert serial.content_key() == parallel.content_key()


def test_serial_config_skips_the_pool():
    module = synthetic_module(1, functions=4)
    cache, _program = _compile(module, 1)
    assert cache.last_parcompile is None
