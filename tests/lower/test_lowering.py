"""Tests for the RichWasm → Wasm lowering: layouts, erasure, equivalence."""

import pytest

from repro.core.semantics import Interpreter
from repro.core.syntax import (
    Block,
    Br,
    BrIf,
    Call,
    Drop,
    Function,
    GetGlobal,
    GetLocal,
    Global,
    If,
    IntBinop,
    LIN,
    Loop,
    MemUnpack,
    NumBinop,
    NumConst,
    NumTestop,
    NumType,
    NumV,
    Privilege,
    Qualify,
    RefJoin,
    RefSplit,
    Return,
    SeqGroup,
    SeqUngroup,
    SetGlobal,
    SetLocal,
    SizeConst,
    StructFree,
    StructGet,
    StructMalloc,
    StructSet,
    StructSwap,
    UNR,
    UnitT,
    VariantCase,
    VariantMalloc,
    arrow,
    f64,
    funtype,
    i32,
    i64,
    make_module,
    prod,
    struct_ht,
    unit,
    variant_ht,
)
from repro.core.typing import check_module
from repro.api import CompileConfig
from repro.lower import (
    layout_bytes,
    lower_module,
    lower_type,
    size_to_bytes,
    struct_layout,
    type_bytes,
    variant_layout,
)
from repro.wasm import ValType, WasmInterpreter, validate_module


def lower_and_run(module, export, args=(), init=False):
    check_module(module)
    lowered = lower_module(module)
    validate_module(lowered.wasm)
    interp = WasmInterpreter()
    inst = interp.instantiate(lowered.wasm)
    if init and "_init" in inst.exports:
        interp.invoke(inst, "_init")
    return interp.invoke(inst, export, list(args)), lowered


def run_both(module, export, args_rw, args_wasm):
    """Run the same export on the RichWasm interpreter and on lowered Wasm."""

    check_module(module)
    rw = Interpreter()
    idx = rw.instantiate(module)
    rw_result = [v.value for v in rw.invoke_export(idx, export, list(args_rw)).values]
    wasm_result, _ = lower_and_run(module, export, args_wasm)
    return rw_result, wasm_result


class TestTypeLayouts:
    def test_erased_types(self):
        assert lower_type(unit()) == []
        from repro.core.syntax import cap, lin_loc, own

        assert lower_type(own(lin_loc(0))) == []
        assert lower_type(cap(Privilege.RW, lin_loc(0), struct_ht([(i32(), SizeConst(32))]))) == []

    def test_numeric_layouts(self):
        assert lower_type(i32()) == [ValType.I32]
        assert lower_type(i64()) == [ValType.I64]
        assert lower_type(f64()) == [ValType.F64]

    def test_tuple_flattened(self):
        assert lower_type(prod([i32(), i64(), unit()], UNR)) == [ValType.I32, ValType.I64]

    def test_refs_are_pointers(self):
        from repro.core.syntax import lin_loc, ref

        ty = ref(Privilege.RW, lin_loc(0), struct_ht([(i64(), SizeConst(64))]), LIN)
        assert lower_type(ty) == [ValType.I32]
        assert type_bytes(ty) == 4

    def test_struct_layout_uses_declared_slot_sizes(self):
        ht = struct_ht([(i32(), SizeConst(64)), (i64(), SizeConst(64))])
        layout = struct_layout(ht)
        assert layout.fields[0].offset == 0
        assert layout.fields[1].offset == 8     # first slot is 64 bits = 8 bytes
        assert layout.total_bytes == 16

    def test_variant_layout_payload_is_max(self):
        layout = variant_layout(variant_ht([unit(), i64(), i32()]))
        assert layout.payload_bytes == 8
        assert layout.total_bytes == 12

    def test_size_to_bytes_rounds_up(self):
        assert size_to_bytes(SizeConst(33)) == 5
        assert size_to_bytes(SizeConst(0)) == 0


class TestErasureAndStats:
    def test_type_level_instructions_erased(self):
        body = (
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(32),), LIN),
            MemUnpack(arrow([], [i32()]), (), (
                RefSplit(), RefJoin(),
                StructGet(0), SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            Return(),
        )
        module = make_module(functions=[Function(funtype([], [i32()]), (SizeConst(32),), body, ("main",))])
        (result, lowered) = lower_and_run(module, "main")
        assert result == [7]
        assert lowered.stats.erased_instructions >= 2
        assert lowered.stats.wasm_instructions > 0

    def test_allocator_functions_are_appended(self):
        module = make_module(functions=[Function(funtype([], []), (), (Return(),), ("main",))])
        check_module(module)
        lowered = lower_module(module)
        # one user function + malloc + free
        assert len(lowered.wasm.functions) == 3


class TestBehaviouralEquivalence:
    """The lowered Wasm must compute the same results as the RichWasm interpreter."""

    def test_factorial(self):
        body = (
            NumConst(NumType.I32, 1), SetLocal(1),
            Block(arrow([], []), (), (
                Loop(arrow([], []), (
                    GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                    GetLocal(0), GetLocal(1), NumBinop(NumType.I32, IntBinop.MUL), SetLocal(1),
                    GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                    Br(0),
                )),
            )),
            GetLocal(1), Return(),
        )
        module = make_module(functions=[
            Function(funtype([i32()], [i32()]), (SizeConst(32),), body, ("fact",))
        ])
        rw, wasm = run_both(module, "fact", [NumV(NumType.I32, 7)], [7])
        assert rw == wasm == [5040]

    def test_struct_strong_update(self):
        body = (
            NumConst(NumType.I32, 7),
            StructMalloc((SizeConst(64),), LIN),
            MemUnpack(arrow([], [i64()]), (), (
                NumConst(NumType.I64, 1 << 40),
                StructSet(0),
                StructGet(0), SetLocal(0),
                StructFree(),
                GetLocal(0),
            )),
            Return(),
        )
        module = make_module(functions=[
            Function(funtype([], [i64()]), (SizeConst(64),), body, ("main",))
        ])
        rw, wasm = run_both(module, "main", [], [])
        assert rw == wasm == [1 << 40]

    def test_variant_dispatch(self):
        cases = (unit(), i32())
        def build(tag, payload):
            body = (
                payload,
                VariantMalloc(tag, cases, LIN),
                MemUnpack(arrow([], [i32()]), (), (
                    VariantCase(LIN, variant_ht(cases), arrow([], [i32()]), (), (
                        (Drop(), NumConst(NumType.I32, -5)),
                        (NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.ADD)),
                    )),
                )),
                Return(),
            )
            return make_module(functions=[Function(funtype([], [i32()]), (), body, ("main",))])

        from repro.core.syntax import UnitV

        rw, wasm = run_both(build(1, NumConst(NumType.I32, 10)), "main", [], [])
        assert rw == wasm == [11]
        rw, wasm = run_both(build(0, UnitV()), "main", [], [])
        assert rw == wasm == [0xFFFFFFFB]  # -5 as an unsigned bit pattern

    def test_tuple_group_ungroup(self):
        body = (
            NumConst(NumType.I32, 3), NumConst(NumType.I64, 4),
            SeqGroup(2, UNR),
            SeqUngroup(),
            Drop(),
            Return(),
        )
        module = make_module(functions=[Function(funtype([], [i32()]), (), body, ("main",))])
        rw, wasm = run_both(module, "main", [], [])
        assert rw == wasm == [3]

    def test_locals_holding_multi_component_values(self):
        # A local holds a (i32, i64) tuple across a strong update.
        body = (
            NumConst(NumType.I32, 5), NumConst(NumType.I64, 6),
            SeqGroup(2, UNR),
            SetLocal(0),
            GetLocal(0),
            SeqUngroup(),
            Drop(),
            Return(),
        )
        module = make_module(functions=[
            Function(funtype([], [i32()]), (SizeConst(96),), body, ("main",))
        ])
        rw, wasm = run_both(module, "main", [], [])
        assert rw == wasm == [5]

    def test_direct_calls(self):
        add1 = Function(
            funtype([i32()], [i32()]), (),
            (GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.ADD), Return()),
            (), "add1",
        )
        main = Function(
            funtype([i32()], [i32()]), (),
            (GetLocal(0), Call(0, ()), Call(0, ()), Call(0, ()), Return()),
            ("main",), "main",
        )
        module = make_module(functions=[add1, main])
        rw, wasm = run_both(module, "main", [NumV(NumType.I32, 10)], [10])
        assert rw == wasm == [13]

    def test_globals(self):
        glob = Global(i32().pretype, True, (NumConst(NumType.I32, 100),), (), "g")
        main = Function(
            funtype([], [i32()]), (),
            (GetGlobal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.ADD),
             SetGlobal(0), GetGlobal(0), Return()),
            ("main",),
        )
        module = make_module(functions=[main], globals=[glob])
        rw, wasm = run_both(module, "main", [], [])
        assert rw == wasm == [101]

    def test_allocator_reuses_freed_blocks(self):
        # Allocate and free in a loop; the free list must bound memory growth.
        body = (
            Block(arrow([], []), (), (
                Loop(arrow([], []), (
                    GetLocal(0), NumTestop(NumType.I32), BrIf(1),
                    NumConst(NumType.I32, 1),
                    StructMalloc((SizeConst(32),), LIN),
                    MemUnpack(arrow([], []), (), (StructFree(),)),
                    GetLocal(0), NumConst(NumType.I32, 1), NumBinop(NumType.I32, IntBinop.SUB), SetLocal(0),
                    Br(0),
                )),
            )),
            NumConst(NumType.I32, 0),
            Return(),
        )
        module = make_module(functions=[
            Function(funtype([i32()], [i32()]), (), body, ("churn",))
        ])
        check_module(module)
        lowered = lower_module(module, config=CompileConfig(memory_pages=1))
        validate_module(lowered.wasm)
        interp = WasmInterpreter()
        inst = interp.instantiate(lowered.wasm)
        # 1000 allocate/free pairs of a 4-byte cell must fit in one 64 KiB page
        # only if freed blocks are actually reused.
        assert interp.invoke(inst, "churn", [1000]) == [0]
