"""Tests for the compiled execution tier (:mod:`repro.wasm.pygen`).

The engine-agreement suites (``test_engines.py``, the property suite, the
profiler parity tests) already pin the compiled tier's semantics against the
flat VM and the tree walker; this file covers the translator's own
machinery — the register/list stack layouts, the per-module translation
memo, the content-keyed ``translate`` cache stage, and the facade's
``translate`` diagnostics — plus compiled-engine invalidation on patched
function tables.
"""

from repro import api
from repro.api import CompileConfig
from repro.ml import BinOp, IntLit, MLFunction, TInt, Var, ml_module
from repro.runtime import ModuleCache
from repro.wasm import (
    Binop,
    Const,
    LocalGet,
    LocalSet,
    Testop as WTestop,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmInterpreter,
    WasmModule,
    WBlock,
    WBr,
    WBrIf,
    WCall,
    WLoop,
    translate_module,
    validate_module,
)
from repro.wasm.decode import decode_module
from repro.wasm.pygen import ModuleTranslation, adopt_translation, translate_functions

I32 = ValType.I32
FT = WasmFuncType


def sum_module():
    """sum(n) = n + (n-1) + ... + 1, via helper calls: loop + call + branch."""

    helper = WasmFunction(FT((I32, I32), (I32,)), (), (
        LocalGet(0), LocalGet(1), Binop(I32, "add"),
    ), name="acc")
    main = WasmFunction(FT((I32,), (I32,)), (I32,), (
        Const(I32, 0), LocalSet(1),
        WBlock(FT((), ()), (
            WLoop(FT((), ()), (
                LocalGet(0), WTestop(I32), WBrIf(1),
                LocalGet(1), LocalGet(0), WCall(0), LocalSet(1),
                LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalSet(0),
                WBr(0),
            )),
        )),
        LocalGet(1),
    ), name="sum", exports=("sum",))
    module = WasmModule(functions=(helper, main))
    validate_module(module)
    return module


class TestTranslation:
    def test_translate_module_memoizes_per_object(self):
        module = sum_module()
        first = translate_module(module)
        assert translate_module(module) is first
        assert isinstance(first, ModuleTranslation)
        assert first.function_count == 2
        assert first.modes == ("register", "register")
        assert "def _f0" in first.source and "def _f1" in first.source

    def test_adopt_translation_seeds_structural_twin(self):
        module = sum_module()
        twin = sum_module()
        translation = translate_module(module)
        adopt_translation(twin, translation)
        assert translate_module(twin) is translation
        # The adopted artifact executes correctly on the twin.
        interp = WasmInterpreter(engine="compiled")
        inst = interp.instantiate(twin)
        assert interp.invoke(inst, "sum", [10]) == [55]

    def test_forced_list_mode_matches_register_mode(self):
        module = sum_module()
        slots = decode_module(module).flat
        listy = translate_functions(slots, module, force_list=True)
        assert listy.modes == ("list", "list")
        # Run the register-mode translation and the list-mode one and
        # compare results and steps against the flat VM.
        flat = WasmInterpreter(engine="flat")
        flat_inst = flat.instantiate(module)
        expected = flat.invoke(flat_inst, "sum", [12])

        from repro.wasm import pygen

        compiled = WasmInterpreter(engine="compiled")
        inst = compiled.instantiate(module)
        assert compiled.invoke(inst, "sum", [12]) == expected
        register_steps = compiled.steps

        pygen._remember_translation(module, listy)
        listy_interp = WasmInterpreter(engine="compiled")
        listy_inst = listy_interp.instantiate(module)
        assert listy_interp.invoke(listy_inst, "sum", [12]) == expected
        assert listy_interp.steps == register_steps == flat.steps

    def test_patched_function_slot_retranslates(self):
        module = sum_module()
        interp = WasmInterpreter(engine="compiled")
        inst = interp.instantiate(module)
        assert interp.invoke(inst, "sum", [3]) == [6]
        # Patch the helper to multiply instead of add: the compiled code for
        # the whole instance must be rebuilt, not just the patched slot.
        inst.funcs[0] = WasmFunction(FT((I32, I32), (I32,)), (), (
            LocalGet(0), LocalGet(1), Binop(I32, "mul"),
        ), name="acc")
        assert interp.invoke(inst, "sum", [3]) == [0]  # 0*3... stays 0
        inst.funcs[0] = WasmFunction(FT((I32, I32), (I32,)), (), (
            LocalGet(1),
        ), name="acc")
        assert interp.invoke(inst, "sum", [3]) == [1]  # last i is 1

    def test_translation_is_shared_across_instances(self):
        module = sum_module()
        interp = WasmInterpreter(engine="compiled")
        first = interp.instantiate(module)
        second = interp.instantiate(module)
        assert first.compiled_py.targets[1] is second.compiled_py.targets[1]


class TestCacheStage:
    def test_translate_stage_hit_miss_and_clear(self):
        cache = ModuleCache()
        module = sum_module()
        first = cache.translate(module)
        assert cache.stats["translate"].misses == 1
        assert cache.translate(module) is first
        assert cache.stats["translate"].hits == 1
        # A structurally identical module object is a content hit and adopts
        # the artifact instead of re-translating.
        twin = sum_module()
        assert cache.translate(twin) is first
        assert cache.stats["translate"].hits == 2
        assert translate_module(twin) is first
        cache.clear()
        assert cache.stats["translate"].lookups == 0
        cache.translate(module)
        assert cache.stats["translate"].misses == 1

    def test_compile_program_translates_for_compiled_engine(self):
        cache = ModuleCache()
        from repro.ffi import counter_program

        cache.compile_program(counter_program().modules(), engine="compiled")
        assert cache.stats["translate"].misses == 1
        cache2 = ModuleCache()
        cache2.compile_program(counter_program().modules())
        assert cache2.stats["translate"].lookups == 0  # default engine: no translation


def _ml_source():
    return ml_module("mlmod", functions=[
        MLFunction("double", "x", TInt(), TInt(), BinOp("*", Var("x"), IntLit(2))),
    ])


class TestFacadeWiring:
    def test_compile_records_translate_stage_for_compiled_engine(self):
        cache = ModuleCache()
        config = CompileConfig(opt_level="O1", engine="compiled")
        program = api.compile(_ml_source(), config, cache=cache)
        assert program.diagnostics.cache["translate"] == "miss"
        assert program.diagnostics.seconds("translate") >= 0
        # Recompiling is a program-level hit; the translate stage re-seeds
        # the per-object memo from the content store and records a hit.
        again = api.compile(_ml_source(), config, cache=cache)
        assert again.diagnostics.cache["program"] == "hit"
        assert again.diagnostics.cache["translate"] == "hit"

    def test_compile_skips_translate_stage_for_other_engines(self):
        program = api.compile(_ml_source(), CompileConfig(opt_level="O1"), cache=ModuleCache())
        assert "translate" not in program.diagnostics.cache

    def test_direct_compile_records_translate_bypass(self):
        config = CompileConfig(opt_level="O1", engine="compiled", cache="none")
        program = api.compile(_ml_source(), config)
        assert program.diagnostics.cache["translate"] == "bypass"

    def test_served_compiled_program_answers_like_flat(self):
        results = {}
        for engine in (None, "compiled"):
            config = CompileConfig(opt_level="O2", engine=engine)
            service = api.serve(_ml_source(), config)
            results[engine] = (
                service.call("mlmod.double", [21]),
                service.call("mlmod.double", [0x7FFFFFFF]),
            )
        assert results[None] == results["compiled"]


class TestEnvSelection:
    def test_env_var_selects_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_WASM_ENGINE", "compiled")
        interp = WasmInterpreter()
        assert interp.engine_name == "compiled"
        inst = interp.instantiate(sum_module())
        assert interp.invoke(inst, "sum", [4]) == [10]
