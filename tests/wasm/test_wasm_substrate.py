"""Tests for the Wasm substrate: validation, interpretation, memory, text."""

import pytest

from repro.wasm import (
    Binop,
    Const,
    Cvtop,
    GlobalGet,
    GlobalSet,
    Load,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    Relop,
    StoreI,
    Testop as WTestop,  # aliased so pytest does not collect it as a test class
    Unop,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmImportedFunction,
    WasmMemory,
    WasmModule,
    WasmTable,
    WasmInterpreter,
    WasmTrap,
    WasmValidationError,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WDrop,
    WIf,
    WLoop,
    WReturn,
    WSelect,
    WUnreachable,
    count_instrs,
    module_to_wat,
    validate_module,
)


def run(module, export, args=()):
    validate_module(module)
    interp = WasmInterpreter()
    inst = interp.instantiate(module)
    return interp.invoke(inst, export, list(args))


def simple(body, params=(), results=(ValType.I32,), locals=(), **kwargs):
    function = WasmFunction(WasmFuncType(tuple(params), tuple(results)), tuple(locals), tuple(body),
                            exports=("main",))
    return WasmModule(functions=(function,), **kwargs)


class TestValidation:
    def test_valid_module(self):
        validate_module(simple([Const(ValType.I32, 1)]))

    def test_stack_underflow(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([Binop(ValType.I32, "add")]))

    def test_type_mismatch(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([Const(ValType.I32, 1), Const(ValType.I64, 2), Binop(ValType.I32, "add")]))

    def test_leftover_values(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([Const(ValType.I32, 1), Const(ValType.I32, 2)]))

    def test_unreachable_makes_stack_polymorphic(self):
        validate_module(simple([WUnreachable(), Binop(ValType.I32, "add")]))

    def test_branch_depth_out_of_range(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([WBlock(WasmFuncType((), ()), (WBr(4),)), Const(ValType.I32, 1)]))

    def test_local_index_out_of_range(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([LocalGet(3)]))

    def test_memory_instruction_without_memory(self):
        with pytest.raises(WasmValidationError):
            validate_module(simple([Const(ValType.I32, 0), Load(ValType.I32)]))

    def test_immutable_global_assignment(self):
        module = WasmModule(
            functions=(WasmFunction(WasmFuncType((), ()), (), (Const(ValType.I32, 1), GlobalSet(0)), exports=("main",)),),
            globals=(WasmGlobal(ValType.I32, False, (Const(ValType.I32, 0),)),),
        )
        with pytest.raises(WasmValidationError):
            validate_module(module)

    def test_table_entry_out_of_range(self):
        module = WasmModule(functions=(), table=WasmTable((3,)))
        with pytest.raises(WasmValidationError):
            validate_module(module)


class TestExecution:
    def test_arithmetic(self):
        assert run(simple([Const(ValType.I32, 40), Const(ValType.I32, 2), Binop(ValType.I32, "add")]), "main") == [42]

    def test_division_by_zero_traps(self):
        module = simple([Const(ValType.I32, 1), Const(ValType.I32, 0), Binop(ValType.I32, "div_u")])
        with pytest.raises(WasmTrap):
            run(module, "main")

    def test_select(self):
        module = simple([Const(ValType.I32, 7), Const(ValType.I32, 9), Const(ValType.I32, 0), WSelect()])
        assert run(module, "main") == [9]

    def test_loop_sum(self):
        # sum 1..n using a loop
        body = (
            Const(ValType.I32, 0), LocalSet(1),
            WBlock(WasmFuncType((), ()), (
                WLoop(WasmFuncType((), ()), (
                    LocalGet(0), WTestop(ValType.I32), WBrIf(1),
                    LocalGet(1), LocalGet(0), Binop(ValType.I32, "add"), LocalSet(1),
                    LocalGet(0), Const(ValType.I32, 1), Binop(ValType.I32, "sub"), LocalSet(0),
                    WBr(0),
                )),
            )),
            LocalGet(1),
        )
        module = simple(body, params=[ValType.I32], locals=[ValType.I32])
        assert run(module, "main", [10]) == [55]

    def test_br_table(self):
        body = (
            WBlock(WasmFuncType((), (ValType.I32,)), (
                WBlock(WasmFuncType((), ()), (
                    WBlock(WasmFuncType((), ()), (
                        LocalGet(0),
                        WBrTable((0, 1), 1),
                    )),
                    Const(ValType.I32, 100), WBr(1),
                )),
                Const(ValType.I32, 200),
            )),
        )
        module = simple(body, params=[ValType.I32])
        assert run(module, "main", [0]) == [100]
        assert run(module, "main", [1]) == [200]
        assert run(module, "main", [9]) == [200]

    def test_multi_value_results(self):
        function = WasmFunction(
            WasmFuncType((), (ValType.I32, ValType.I32)),
            (),
            (Const(ValType.I32, 1), Const(ValType.I32, 2)),
            exports=("pair",),
        )
        module = WasmModule(functions=(function,))
        assert run(module, "pair") == [1, 2]

    def test_call_and_call_indirect(self):
        double = WasmFunction(WasmFuncType((ValType.I32,), (ValType.I32,)), (),
                              (LocalGet(0), Const(ValType.I32, 2), Binop(ValType.I32, "mul")))
        via_table = WasmFunction(
            WasmFuncType((ValType.I32,), (ValType.I32,)), (),
            (LocalGet(0), Const(ValType.I32, 0), WCallIndirect(WasmFuncType((ValType.I32,), (ValType.I32,)))),
            exports=("indirect",),
        )
        direct = WasmFunction(
            WasmFuncType((ValType.I32,), (ValType.I32,)), (),
            (LocalGet(0), WCall(0)),
            exports=("direct",),
        )
        module = WasmModule(functions=(double, via_table, direct), table=WasmTable((0,)))
        assert run(module, "direct", [21]) == [42]
        assert run(module, "indirect", [5]) == [10]

    def test_call_indirect_out_of_bounds_traps(self):
        f = WasmFunction(
            WasmFuncType((), (ValType.I32,)), (),
            (Const(ValType.I32, 0), Const(ValType.I32, 3),
             WCallIndirect(WasmFuncType((ValType.I32,), (ValType.I32,)))),
            exports=("main",),
        )
        module = WasmModule(functions=(f,), table=WasmTable(()))
        with pytest.raises(WasmTrap):
            run(module, "main")

    def test_host_import(self):
        imported = WasmImportedFunction(WasmFuncType((ValType.I32,), (ValType.I32,)), "env", "triple")
        main = WasmFunction(WasmFuncType((ValType.I32,), (ValType.I32,)), (),
                            (LocalGet(0), WCall(0)), exports=("main",))
        module = WasmModule(functions=(imported, main))
        interp = WasmInterpreter()
        inst = interp.instantiate(module, {("env", "triple"): lambda x: [x * 3]})
        assert interp.invoke(inst, "main", [4]) == [12]

    def test_globals(self):
        module = WasmModule(
            functions=(WasmFunction(WasmFuncType((), (ValType.I32,)), (),
                                    (GlobalGet(0), Const(ValType.I32, 1), Binop(ValType.I32, "add"),
                                     GlobalSet(0), GlobalGet(0)), exports=("bump",)),),
            globals=(WasmGlobal(ValType.I32, True, (Const(ValType.I32, 0),)),),
        )
        validate_module(module)
        interp = WasmInterpreter()
        inst = interp.instantiate(module)
        assert interp.invoke(inst, "bump") == [1]
        assert interp.invoke(inst, "bump") == [2]

    def test_conversions(self):
        module = simple([Const(ValType.I32, -1), Cvtop(ValType.I64, "extend_s", ValType.I32),
                         Cvtop(ValType.I32, "wrap", ValType.I64)])
        assert run(module, "main") == [0xFFFFFFFF]


class TestMemory:
    def make_memory_module(self, body, results=(ValType.I32,)):
        return simple(body, results=results, memory=WasmMemory(1))

    def test_store_load_roundtrip(self):
        module = self.make_memory_module([
            Const(ValType.I32, 8), Const(ValType.I32, 123), StoreI(ValType.I32),
            Const(ValType.I32, 8), Load(ValType.I32),
        ])
        assert run(module, "main") == [123]

    def test_narrow_store_load(self):
        module = self.make_memory_module([
            Const(ValType.I32, 8), Const(ValType.I32, 0xABCD), StoreI(ValType.I32, width=8),
            Const(ValType.I32, 8), Load(ValType.I32, width=8),
        ])
        assert run(module, "main") == [0xCD]

    def test_i64_and_f64_memory(self):
        module = self.make_memory_module([
            Const(ValType.I32, 16), Const(ValType.I64, 2**40), StoreI(ValType.I64),
            Const(ValType.I32, 16), Load(ValType.I64),
        ], results=(ValType.I64,))
        assert run(module, "main") == [2**40]

    def test_out_of_bounds_traps(self):
        module = self.make_memory_module([
            Const(ValType.I32, 70000), Load(ValType.I32),
        ])
        with pytest.raises(WasmTrap):
            run(module, "main")

    def test_memory_size_and_grow(self):
        module = self.make_memory_module([
            Const(ValType.I32, 2), MemoryGrow(), WDrop(),
            MemorySize(),
        ])
        assert run(module, "main") == [3]

    def test_data_segment(self):
        from repro.wasm import WasmData

        function = WasmFunction(WasmFuncType((), (ValType.I32,)), (),
                                (Const(ValType.I32, 4), Load(ValType.I32)), exports=("main",))
        module = WasmModule(functions=(function,), memory=WasmMemory(1),
                            data=(WasmData(4, (77).to_bytes(4, "little")),))
        assert run(module, "main") == [77]


class TestText:
    def test_wat_output_contains_structure(self):
        module = simple([Const(ValType.I32, 1)], memory=WasmMemory(2))
        wat = module_to_wat(module)
        assert "(module" in wat
        assert "(memory 2)" in wat
        assert "i32.const 1" in wat
        assert '(export "main"' in wat

    def test_count_instrs_descends_into_blocks(self):
        body = (WBlock(WasmFuncType((), ()), (WNop := Const(ValType.I32, 1), WDrop())),)
        assert count_instrs(body) == 3
