"""Tests for the pluggable execution-engine layer.

Covers the engine factory and facade, the flat pre-decoder's branch-target
resolution, semantic agreement between the tree walker and the flat VM on
targeted control-flow/call/trap scenarios, and the ``max_steps`` accounting
parity the analysis layer depends on.
"""

import pytest

from repro.core.typing.errors import WasmError
from repro.wasm import (
    Binop,
    CompiledPyEngine,
    Const,
    DEFAULT_ENGINE,
    ExecutionEngine,
    FlatVMEngine,
    LocalGet,
    LocalSet,
    LocalTee,
    MemoryGrow,
    MemorySize,
    Relop,
    StoreI,
    Load,
    Testop as WTestop,
    TreeWalkingEngine,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmGlobal,
    WasmImportedFunction,
    WasmInterpreter,
    WasmMemory,
    WasmModule,
    WasmTable,
    WasmTrap,
    WBlock,
    WBr,
    WBrIf,
    WBrTable,
    WCall,
    WCallIndirect,
    WIf,
    WLoop,
    WReturn,
    WUnreachable,
    available_engines,
    create_engine,
    decode_function,
    validate_module,
)
from repro.wasm.decode import OP_BLOCK, OP_BR, OP_END, OP_IF, OP_JUMP, OP_LOOP

I32 = ValType.I32
FT = WasmFuncType


def simple(body, params=(), results=(I32,), locals=(), **kwargs):
    function = WasmFunction(FT(tuple(params), tuple(results)), tuple(locals), tuple(body), exports=("main",))
    return WasmModule(functions=(function,), **kwargs)


def run_on(engine, module, export="main", args=(), host_imports=None):
    interp = WasmInterpreter(engine=engine)
    inst = interp.instantiate(module, host_imports)
    return interp.invoke(inst, export, list(args)), interp.steps


ALL_ENGINES = ("tree", "flat", "compiled")


def run_both(module, export="main", args=(), host_imports=None, validate=True):
    """Run on every engine, demand identical results and step counts."""

    if validate:
        validate_module(module)
    outcomes = {
        engine: run_on(engine, module, export, args, host_imports() if host_imports else None)
        for engine in ALL_ENGINES
    }
    reference, (results, steps) = ALL_ENGINES[0], outcomes[ALL_ENGINES[0]]
    for engine, (other_results, other_steps) in outcomes.items():
        assert other_results == results, (
            f"engine divergence: {reference}={results!r} {engine}={other_results!r}"
        )
        assert other_steps == steps, (
            f"step divergence: {reference}={steps} {engine}={other_steps}"
        )
    return results


def trap_both(module, export="main", args=(), validate=True):
    """Every engine must trap, with the same message and step count."""

    if validate:
        validate_module(module)
    outcomes = []
    for engine in ALL_ENGINES:
        interp = WasmInterpreter(engine=engine)
        inst = interp.instantiate(module)
        with pytest.raises(WasmTrap) as excinfo:
            interp.invoke(inst, export, list(args))
        outcomes.append((str(excinfo.value), interp.steps))
    assert len(set(outcomes)) == 1, f"trap divergence: {dict(zip(ALL_ENGINES, outcomes))}"
    return outcomes[0][0]


class TestEngineFactory:
    def test_available_engines(self):
        assert available_engines() == ("compiled", "flat", "tree")
        assert DEFAULT_ENGINE == "flat"

    def test_create_by_name(self):
        assert isinstance(create_engine("tree"), TreeWalkingEngine)
        assert isinstance(create_engine("flat"), FlatVMEngine)
        assert isinstance(create_engine("compiled"), CompiledPyEngine)

    def test_default_is_flat(self, monkeypatch):
        monkeypatch.delenv("REPRO_WASM_ENGINE", raising=False)
        assert isinstance(create_engine(None), FlatVMEngine)
        assert WasmInterpreter().engine_name == "flat"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WASM_ENGINE", "tree")
        assert WasmInterpreter().engine_name == "tree"
        monkeypatch.delenv("REPRO_WASM_ENGINE")
        assert WasmInterpreter().engine_name == "flat"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            create_engine("jit")

    def test_instance_passthrough(self):
        engine = FlatVMEngine(max_steps=7)
        assert create_engine(engine) is engine
        assert WasmInterpreter(engine=engine).engine is engine
        with pytest.raises(ValueError):
            create_engine(engine, max_steps=9)

    def test_engines_are_execution_engines(self):
        for name in available_engines():
            assert isinstance(create_engine(name), ExecutionEngine)

    def test_facade_counters_delegate(self):
        interp = WasmInterpreter(max_steps=10, engine="flat")
        assert interp.max_steps == 10
        interp.max_steps = None
        assert interp.engine.max_steps is None
        interp.steps = 5
        assert interp.engine.steps == 5


class TestDecoder:
    def test_block_branch_targets_resolved(self):
        function = WasmFunction(FT((), (I32,)), (), (
            WBlock(FT((), ()), (WBr(0),)),
            Const(I32, 1),
        ))
        flat = decode_function(function)
        ops = [ins[0] for ins in flat.code]
        assert ops == [OP_BLOCK, OP_BR, OP_END, 3]  # 3 == OP_CONST
        block = flat.code[0]
        assert block[1] == 3  # branch target: past the END marker

    def test_loop_branch_target_is_body_start(self):
        function = WasmFunction(FT((), (I32,)), (), (
            WLoop(FT((), ()), (Const(I32, 0), WBrIf(0))),
            Const(I32, 1),
        ))
        flat = decode_function(function)
        assert flat.code[0][0] == OP_LOOP
        assert flat.code[0][1] == 1  # first body instruction

    def test_if_else_layout(self):
        function = WasmFunction(FT((I32,), (I32,)), (), (
            LocalGet(0),
            WIf(FT((), (I32,)), (Const(I32, 10),), (Const(I32, 20),)),
        ))
        flat = decode_function(function)
        ops = [ins[0] for ins in flat.code]
        assert ops[1] == OP_IF
        assert OP_JUMP in ops and OP_END in ops
        header = flat.code[1]
        else_start, after_end = header[1], header[2]
        assert flat.code[else_start - 1][0] == OP_JUMP  # then-arm jumps over else
        assert flat.code[after_end - 1][0] == OP_END

    def test_free_ops_do_not_cost_steps(self):
        # One block entry + one const + one br = 3 steps; END/JUMP are free.
        module = simple([
            WBlock(FT((), ()), (WBr(0),)),
            Const(I32, 1),
        ])
        result = run_both(module)
        assert result == [1]
        _, steps = run_on("flat", module)
        assert steps == 3  # block, br, const — END/JUMP are free

    def test_decode_caches_on_instance(self):
        module = simple([Const(I32, 3)])
        interp = WasmInterpreter(engine="flat")
        inst = interp.instantiate(module)
        assert inst.decoded is not None
        assert interp.invoke(inst, "main") == [3]

    def test_lazy_decode_for_foreign_instance(self):
        # An instance built by the tree engine lacks flat code; the flat VM
        # decodes it on first use.
        module = simple([Const(I32, 9)])
        tree = WasmInterpreter(engine="tree")
        inst = tree.instantiate(module)
        assert inst.decoded is None
        flat = WasmInterpreter(engine="flat")
        assert flat.invoke(inst, "main") == [9]
        assert inst.decoded is not None

    def test_decode_is_module_level_and_shared_across_instances(self):
        # The flat code is a per-module artifact: two instances of one module
        # hold the very same FlatFunction objects (decoded exactly once).
        from repro.wasm import decode_module

        module = simple([Const(I32, 3)])
        interp = WasmInterpreter(engine="flat")
        first = interp.instantiate(module)
        second = interp.instantiate(module)
        assert first.decoded[0] is second.decoded[0]
        assert decode_module(module).flat[0] is first.decoded[0]
        assert decode_module(module) is decode_module(module)

    def test_patched_function_slot_invalidates_decode_cache(self):
        # Regression test: the decode cache used to be filled at
        # instantiation and trusted forever, so swapping a function slot
        # (e.g. for an optimized body) silently kept executing the stale
        # flat code while the tree walker ran the new body.
        module = simple([Const(I32, 1)])
        replacement = WasmFunction(FT((), (I32,)), (), (Const(I32, 2),), exports=("main",))
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(engine=engine)
            inst = interp.instantiate(module)
            assert interp.invoke(inst, "main") == [1]
            inst.funcs[0] = replacement
            assert interp.invoke(inst, "main") == [2], f"{engine} engine ran stale code"

    def test_patched_slot_does_not_disturb_other_functions(self):
        other = WasmFunction(FT((), (I32,)), (), (Const(I32, 7),), exports=("other",))
        main = WasmFunction(FT((), (I32,)), (), (Const(I32, 1),), exports=("main",))
        module = WasmModule(functions=(other, main))
        interp = WasmInterpreter(engine="flat")
        inst = interp.instantiate(module)
        shared_other = inst.decoded[0]
        inst.funcs[1] = WasmFunction(FT((), (I32,)), (), (Const(I32, 2),), exports=("main",))
        assert interp.invoke(inst, "main") == [2]
        # The untouched slot still serves the shared module-level decode.
        assert inst.decoded[0] is shared_other
        assert interp.invoke(inst, "other") == [7]


class TestEngineAgreement:
    def test_nested_blocks_and_branch_depths(self):
        module = simple([
            Const(I32, 0), LocalSet(0),
            WBlock(FT((), ()), (
                WBlock(FT((), ()), (
                    WBlock(FT((), ()), (WBr(1),)),
                    # skipped by the br above
                    Const(I32, 99), LocalSet(0), WBr(1),
                )),
                Const(I32, 7), LocalSet(0),
            )),
            LocalGet(0),
        ], locals=(I32,))
        assert run_both(module) == [7]

    def test_loop_countdown(self):
        module = simple([
            Const(I32, 10), LocalSet(0),
            Const(I32, 0), LocalSet(1),
            WBlock(FT((), ()), (
                WLoop(FT((), ()), (
                    LocalGet(0), WTestop(I32), WBrIf(1),
                    LocalGet(1), LocalGet(0), Binop(I32, "add"), LocalSet(1),
                    LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalSet(0),
                    WBr(0),
                )),
            )),
            LocalGet(1),
        ], params=(), locals=(I32, I32))
        assert run_both(module) == [55]

    def test_block_with_params_and_results(self):
        module = simple([
            Const(I32, 5),
            WBlock(FT((I32,), (I32,)), (
                Const(I32, 2), Binop(I32, "mul"),
            )),
        ])
        assert run_both(module) == [10]

    def test_branch_carries_block_result(self):
        module = simple([
            WBlock(FT((), (I32,)), (
                Const(I32, 42),
                WBr(0),
            )),
        ])
        assert run_both(module) == [42]

    def test_loop_fallthrough_keeps_results(self):
        # A loop whose result arity differs from its param arity: fallthrough
        # must keep the *result* values (the branch arity is the params).
        module = simple([
            WLoop(FT((), (I32,)), (Const(I32, 7),)),
        ])
        assert run_both(module) == [7]

    def test_loop_consumes_params_on_fallthrough(self):
        module = simple([
            Const(I32, 3),
            WLoop(FT((I32,), ()), (LocalSet(0),)),
            LocalGet(0),
        ], locals=(I32,))
        assert run_both(module) == [3]

    def test_loop_with_params(self):
        # loop [i32] -> [i32]: decrement until zero, result is the final value.
        module = simple([
            Const(I32, 5),
            WLoop(FT((I32,), (I32,)), (
                Const(I32, 1), Binop(I32, "sub"),
                LocalTee(0),
                LocalGet(0), Const(I32, 0), Relop(I32, "ne"),
                WBrIf(0),
            )),
        ], locals=(I32,))
        assert run_both(module) == [0]

    @pytest.mark.parametrize("selector,expected", [(0, 10), (1, 20), (2, 30), (7, 30), (0xFFFFFFFF, 30)])
    def test_br_table(self, selector, expected):
        module = simple([
            Const(I32, 0), LocalSet(1),
            WBlock(FT((), ()), (
                WBlock(FT((), ()), (
                    WBlock(FT((), ()), (
                        LocalGet(0),
                        WBrTable((0, 1), 2),
                    )),
                    Const(I32, 10), LocalSet(1), WBr(1),
                )),
                Const(I32, 20), LocalSet(1), WBr(0),
            )),
            LocalGet(1), Const(I32, 0), Relop(I32, "eq"),
            WIf(FT((), ()), (Const(I32, 30), LocalSet(1)), ()),
            LocalGet(1),
        ], params=(I32,), locals=(I32,))
        assert run_both(module, args=(selector,)) == [expected]

    def test_if_without_else(self):
        module = simple([
            Const(I32, 1), LocalSet(1),
            LocalGet(0),
            WIf(FT((), ()), (Const(I32, 5), LocalSet(1)), ()),
            LocalGet(1),
        ], params=(I32,), locals=(I32,))
        assert run_both(module, args=(1,)) == [5]
        assert run_both(module, args=(0,)) == [1]

    def test_early_return(self):
        module = simple([
            LocalGet(0),
            WIf(FT((), ()), (Const(I32, 111), WReturn()), ()),
            Const(I32, 222),
        ], params=(I32,))
        assert run_both(module, args=(1,)) == [111]
        assert run_both(module, args=(0,)) == [222]

    def test_return_inside_loop(self):
        module = simple([
            WBlock(FT((), ()), (
                WLoop(FT((), ()), (
                    LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalTee(0),
                    WTestop(I32),
                    WIf(FT((), ()), (LocalGet(0), Const(I32, 1000), Binop(I32, "add"), WReturn()), ()),
                    WBr(0),
                )),
            )),
            Const(I32, 0),
        ], params=(I32,))
        assert run_both(module, args=(4,)) == [1000]

    def test_direct_and_indirect_calls(self):
        double = WasmFunction(FT((I32,), (I32,)), (), (LocalGet(0), Const(I32, 2), Binop(I32, "mul")))
        square = WasmFunction(FT((I32,), (I32,)), (), (LocalGet(0), LocalGet(0), Binop(I32, "mul")))
        main = WasmFunction(FT((I32, I32), (I32,)), (), (
            LocalGet(0),
            LocalGet(1),
            WCallIndirect(FT((I32,), (I32,))),
            WCall(0),
        ), exports=("main",))
        module = WasmModule(functions=(double, square, main), table=WasmTable((0, 1)))
        assert run_both(module, args=(3, 1)) == [18]  # square then double
        assert run_both(module, args=(3, 0)) == [12]  # double then double

    def test_call_indirect_out_of_bounds(self):
        f = WasmFunction(FT((), (I32,)), (), (Const(I32, 1),))
        main = WasmFunction(FT((), (I32,)), (), (
            Const(I32, 5), WCallIndirect(FT((), (I32,))),
        ), exports=("main",))
        module = WasmModule(functions=(f, main), table=WasmTable((0,)))
        message = trap_both(module)
        assert "out of table bounds" in message

    def test_call_indirect_type_mismatch(self):
        f = WasmFunction(FT((I32,), (I32,)), (), (LocalGet(0),))
        main = WasmFunction(FT((), (I32,)), (), (
            Const(I32, 0), WCallIndirect(FT((), (I32,))),
        ), exports=("main",))
        module = WasmModule(functions=(f, main), table=WasmTable((0,)))
        message = trap_both(module, validate=False)
        assert message == "indirect call type mismatch"

    def test_host_imports_and_normalization(self):
        imported = WasmImportedFunction(FT((I32,), (I32,)), "env", "neg")
        main = WasmFunction(FT((I32,), (I32,)), (), (
            LocalGet(0), WCall(0),
        ), exports=("main",))
        module = WasmModule(functions=(imported, main))

        def hosts():
            return {("env", "neg"): lambda x: [-x]}

        # Host returns -5; the boundary normalizes it to the u32 bit pattern.
        assert run_both(module, args=(5,), host_imports=hosts) == [0xFFFFFFFB]

    def test_host_reentrancy_keeps_steps_coherent(self):
        helper = WasmFunction(FT((I32,), (I32,)), (), (
            LocalGet(0), Const(I32, 3), Binop(I32, "mul"),
        ), exports=("helper",))
        imported = WasmImportedFunction(FT((I32,), (I32,)), "env", "callback")
        main = WasmFunction(FT((I32,), (I32,)), (), (
            LocalGet(0), WCall(1), Const(I32, 1), Binop(I32, "add"),
        ), exports=("main",))
        module = WasmModule(functions=(helper, imported, main))

        outcomes = []
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(engine=engine)
            holder = {}

            def callback(x):
                return interp.invoke(holder["inst"], "helper", [x])

            holder["inst"] = interp.instantiate(module, {("env", "callback"): callback})
            outcomes.append((interp.invoke(holder["inst"], "main", [7]), interp.steps))
        assert len(set(map(repr, outcomes))) == 1, outcomes
        assert outcomes[0][0] == [22]

    def test_trapping_reentrant_host_call_keeps_steps_coherent(self):
        # The reentrant invocation executes instructions and then the host
        # raises; both engines must still report the same cumulative steps.
        helper = WasmFunction(FT((), (I32,)), (), (
            Const(I32, 1), Const(I32, 2), Binop(I32, "add"),
        ), exports=("helper",))
        imported = WasmImportedFunction(FT((), (I32,)), "env", "boom")
        main = WasmFunction(FT((), (I32,)), (), (
            WCall(1),
        ), exports=("main",))
        module = WasmModule(functions=(helper, imported, main))

        outcomes = []
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(engine=engine)
            holder = {}

            def boom():
                interp.invoke(holder["inst"], "helper")
                raise WasmTrap("host gave up")

            holder["inst"] = interp.instantiate(module, {("env", "boom"): boom})
            with pytest.raises(WasmTrap, match="host gave up"):
                interp.invoke(holder["inst"], "main")
            outcomes.append(interp.steps)
        assert len(set(outcomes)) == 1 and outcomes[0] > 0, outcomes

    def test_globals_and_start_function(self):
        counter = WasmGlobal(I32, True, (Const(I32, 100),))
        start = WasmFunction(FT((), ()), (), (
            Const(I32, 1),
            __import__("repro.wasm", fromlist=["GlobalSet"]).GlobalSet(0),
        ))
        main = WasmFunction(FT((), (I32,)), (), (
            __import__("repro.wasm", fromlist=["GlobalGet"]).GlobalGet(0),
        ), exports=("main",))
        module = WasmModule(functions=(start, main), globals=(counter,), start=0)
        assert run_both(module, validate=False) == [1]

    def test_unreachable_and_division_traps(self):
        assert trap_both(simple([WUnreachable()])) == "unreachable executed"
        message = trap_both(simple([Const(I32, 1), Const(I32, 0), Binop(I32, "div_u")]))
        assert "zero" in message.lower()

    def test_memory_roundtrip_and_grow(self):
        module = simple([
            Const(I32, 8), Const(I32, 0xDEAD), StoreI(I32),
            MemorySize(),
            Const(I32, 1), MemoryGrow(),
            Binop(I32, "add"),
            Const(I32, 8), Load(I32),
            Binop(I32, "add"),
        ], memory=WasmMemory(1, 4))
        # size(1) + old_size(1) + loaded(0xDEAD)
        assert run_both(module) == [2 + 0xDEAD]

    def test_float_pipeline(self):
        F64 = ValType.F64
        module = simple([
            Const(F64, 1.5), Const(F64, 2.25), Binop(F64, "add"),
            Const(F64, 3.0), Binop(F64, "mul"),
        ], results=(F64,))
        assert run_both(module) == [11.25]


class TestMaxStepsParity:
    def _loop_module(self):
        return simple([
            Const(I32, 100), LocalSet(0),
            WBlock(FT((), ()), (
                WLoop(FT((), ()), (
                    LocalGet(0), WTestop(I32), WBrIf(1),
                    LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalSet(0),
                    WBr(0),
                )),
            )),
            LocalGet(0),
        ], locals=(I32,))

    def test_engines_count_identically_without_budget(self):
        module = self._loop_module()
        counts = {engine: run_on(engine, module)[1] for engine in ALL_ENGINES}
        assert len(set(counts.values())) == 1 and counts["flat"] > 0, counts

    @pytest.mark.parametrize("budget", [1, 2, 3, 5, 17, 100, 399, 701])
    def test_trap_at_identical_step_number(self, budget):
        # The compiled engine batches accounting per basic block, so these
        # budgets deliberately land mid-block: the trap must still fire at
        # the exact offending step, not at block granularity.
        module = self._loop_module()
        validate_module(module)
        outcomes = []
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(max_steps=budget, engine=engine)
            inst = interp.instantiate(module)
            try:
                result = interp.invoke(inst, "main")
                outcomes.append(("ok", result, interp.steps))
            except WasmTrap as trap:
                outcomes.append(("trap", str(trap), interp.steps))
        assert len(set(map(repr, outcomes))) == 1, f"budget {budget}: {dict(zip(ALL_ENGINES, outcomes))}"
        kind, detail, steps = outcomes[0]
        if kind == "trap":
            assert detail == "step budget exhausted"
            assert steps == budget + 1  # the offending step is counted

    def test_budget_spans_invocations(self):
        module = simple([Const(I32, 1)])
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(max_steps=2, engine=engine)
            inst = interp.instantiate(module)
            interp.invoke(inst, "main")
            interp.invoke(inst, "main")
            with pytest.raises(WasmTrap, match="step budget exhausted"):
                interp.invoke(inst, "main")


class TestExportErrors:
    def test_missing_export_message_matches(self):
        module = simple([Const(I32, 1)])
        for engine in ALL_ENGINES:
            interp = WasmInterpreter(engine=engine)
            inst = interp.instantiate(module)
            with pytest.raises(WasmError, match="no export named"):
                interp.invoke(inst, "nope")

    def test_unresolved_import_message_matches(self):
        imported = WasmImportedFunction(FT((), ()), "env", "missing")
        module = WasmModule(functions=(imported,))
        for engine in ALL_ENGINES:
            with pytest.raises(WasmError, match="unresolved Wasm import"):
                WasmInterpreter(engine=engine).instantiate(module)


class TestDifferentialEngineIsolation:
    def test_engine_instance_not_shared_between_runs(self):
        # Passing an ExecutionEngine instance to run_differential must not
        # pool the step budget between the baseline and candidate runs: a
        # module differentially compared against itself always matches.
        from repro.opt import run_differential

        module = simple([
            Const(I32, 30), LocalSet(0),
            WBlock(FT((), ()), (
                WLoop(FT((), ()), (
                    LocalGet(0), WTestop(I32), WBrIf(1),
                    LocalGet(0), Const(I32, 1), Binop(I32, "sub"), LocalSet(0),
                    WBr(0),
                )),
            )),
            LocalGet(0),
        ], locals=(I32,))
        validate_module(module)
        _, steps = run_on("flat", module)
        engine = FlatVMEngine(max_steps=int(steps * 1.5))
        report = run_differential(module, module, [("main", ())], engine=engine)
        assert report.ok, report.format_report()
        assert engine.steps == 0  # fresh engines were used per side
