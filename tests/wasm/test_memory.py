"""Bounds-edge tests for :class:`repro.wasm.LinearMemory`.

The memory moved to a memoryview/bytearray fast path: reads are zero-copy
views over the backing store, writes are in-place slice assignments, and
``grow`` extends the backing ``bytearray`` in place (identity-preserving for
engines that bind ``memory.data`` locally).  These tests pin the edge
behaviour: growth to the declared maximum, off-by-one accesses at page
boundaries, zero-length accesses, and both engines trapping identically.
"""

import pytest

from repro.wasm import (
    Binop,
    Const,
    LinearMemory,
    Load,
    MAX_MEMORY_PAGES,
    MemoryGrow,
    MemorySize,
    PAGE_SIZE,
    StoreI,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmInterpreter,
    WasmMemory,
    WasmModule,
    WasmTrap,
)

I32 = ValType.I32


def memory_module(body, *, pages=1, max_pages=None, results=(I32,)):
    function = WasmFunction(WasmFuncType((), tuple(results)), (), tuple(body), exports=("main",))
    return WasmModule(functions=(function,), memory=WasmMemory(pages, max_pages))


def run_both(module, export="main"):
    outcomes = []
    for engine in ("tree", "flat"):
        interp = WasmInterpreter(engine=engine)
        inst = interp.instantiate(module)
        try:
            outcomes.append(("ok", interp.invoke(inst, export)))
        except WasmTrap as trap:
            outcomes.append(("trap", str(trap)))
    assert outcomes[0] == outcomes[1], f"engine divergence: {outcomes}"
    return outcomes[0]


class TestDirectAccess:
    def test_read_is_zero_copy_view(self):
        memory = LinearMemory(1)
        memory.write(4, b"\x01\x02\x03\x04")
        view = memory.read(4, 4)
        assert isinstance(view, memoryview)
        assert view == b"\x01\x02\x03\x04"
        # Zero-copy: later writes are visible through the view.
        memory.data[4] = 0xFF
        assert view[0] == 0xFF

    def test_read_bytes_returns_owned_copy(self):
        memory = LinearMemory(1)
        memory.write(0, b"abc")
        copy = memory.read_bytes(0, 3)
        assert isinstance(copy, bytes)
        memory.data[0] = 0
        assert copy == b"abc"

    def test_zero_length_access(self):
        memory = LinearMemory(1)
        assert memory.read(0, 0) == b""
        # A zero-length access at the very end of memory is in bounds...
        assert memory.read(PAGE_SIZE, 0) == b""
        memory.write(PAGE_SIZE, b"")
        # ...but one byte past it is not.
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(PAGE_SIZE + 1, 0)

    def test_off_by_one_at_page_boundary(self):
        memory = LinearMemory(1)
        memory.write(PAGE_SIZE - 4, b"\xAA\xBB\xCC\xDD")  # flush against the end
        assert memory.read(PAGE_SIZE - 1, 1) == b"\xDD"
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(PAGE_SIZE - 3, 4)
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.write(PAGE_SIZE - 3, b"\x00\x00\x00\x00")

    def test_negative_address_traps(self):
        memory = LinearMemory(1)
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(-1, 1)

    def test_grow_to_max_and_beyond(self):
        memory = LinearMemory(1, max_pages=3)
        assert memory.grow(2) == 1  # returns the old size
        assert memory.size_pages() == 3
        assert memory.grow(1) == -1  # beyond max: refused, size unchanged
        assert memory.size_pages() == 3
        assert memory.grow(0) == 3  # zero growth at max is fine

    def test_grow_negative_delta_returns_minus_one(self):
        # Wasm deltas are u32, so a negative Python int is out of range: the
        # failure mode is -1, never an exception (this used to raise
        # ValueError from bytes(negative)).
        memory = LinearMemory(2)
        assert memory.grow(-1) == -1
        assert memory.grow(-(1 << 40)) == -1
        assert memory.size_pages() == 2

    def test_grow_without_declared_max_hits_the_4gib_hard_limit(self):
        # No declared maximum does not mean unbounded: memory is u32-indexed,
        # so 65536 pages is the ceiling regardless.  (Deltas that would pass
        # the old unchecked path are refused without allocating anything.)
        assert MAX_MEMORY_PAGES == 65536
        memory = LinearMemory(1)
        assert memory.max_pages is None
        assert memory.grow(MAX_MEMORY_PAGES) == -1       # 1 + 65536 > limit
        assert memory.grow(MAX_MEMORY_PAGES + 123) == -1
        assert memory.grow(1 << 40) == -1
        assert memory.size_pages() == 1

    def test_declared_max_above_the_hard_limit_is_clamped(self):
        memory = LinearMemory(1, max_pages=MAX_MEMORY_PAGES * 2)
        assert memory.grow(MAX_MEMORY_PAGES) == -1
        assert memory.size_pages() == 1

    def test_grow_preserves_data_and_identity(self):
        memory = LinearMemory(1)
        backing = memory.data
        memory.write(100, b"keep")
        assert memory.grow(1) == 1
        assert memory.data is backing  # in-place extend, bindings stay valid
        assert memory.read(100, 4) == b"keep"
        assert memory.read(PAGE_SIZE, 4) == b"\x00\x00\x00\x00"
        # The refreshed view covers the grown region.
        assert len(memory.read(0, 2 * PAGE_SIZE)) == 2 * PAGE_SIZE

    def test_view_held_across_grow_is_rejected(self):
        # Growing needs the buffer unexported; a caller-held view makes the
        # resize fail loudly — with a message naming the hazard and the
        # escape hatch — rather than corrupt the view.
        memory = LinearMemory(1)
        view = memory.read(0, 4)
        with pytest.raises(BufferError, match="zero-copy view.*read_bytes"):
            memory.grow(1)
        assert memory.size_pages() == 1  # unchanged: the error is pre-mutation
        view.release()
        assert memory.grow(1) == 1

    def test_view_held_across_reset_is_rejected(self):
        memory = LinearMemory(1)
        memory.grow(1)
        view = memory.read(0, 4)
        with pytest.raises(BufferError, match="zero-copy view"):
            memory.reset(bytes(PAGE_SIZE))
        view.release()
        memory.reset(bytes(PAGE_SIZE))
        assert memory.size_pages() == 1

    def test_reads_still_work_after_rejected_grow(self):
        # The cached internal view must be re-established after the failure.
        memory = LinearMemory(1)
        memory.write(0, b"abcd")
        view = memory.read(0, 4)
        with pytest.raises(BufferError):
            memory.grow(1)
        assert memory.read(0, 4) == b"abcd"
        view.release()

    def test_trap_message_shape(self):
        memory = LinearMemory(1)
        with pytest.raises(WasmTrap) as excinfo:
            memory.read(PAGE_SIZE, 4)
        assert str(excinfo.value) == (
            f"out-of-bounds memory access at {PAGE_SIZE} (+4), memory is {PAGE_SIZE} bytes"
        )


class TestEngineBoundaryAgreement:
    def test_store_at_boundary_ok(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 4), Const(I32, 0x1234), StoreI(I32),
            Const(I32, PAGE_SIZE - 4), Load(I32),
        ])
        assert run_both(module) == ("ok", [0x1234])

    def test_store_off_by_one_traps_identically(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 3), Const(I32, 1), StoreI(I32),
            Const(I32, 0),
        ])
        kind, message = run_both(module)
        assert kind == "trap"
        assert message == (
            f"out-of-bounds memory access at {PAGE_SIZE - 3} (+4), memory is {PAGE_SIZE} bytes"
        )

    def test_narrow_load_at_boundary(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 1), Const(I32, 0x7F), StoreI(I32, width=8),
            Const(I32, PAGE_SIZE - 1), Load(I32, width=8, signed=False),
        ])
        assert run_both(module) == ("ok", [0x7F])

    def test_load_with_offset_past_boundary_traps(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 2), Load(I32, offset=1, width=16),
        ])
        kind, message = run_both(module)
        assert kind == "trap"
        assert "out-of-bounds" in message

    def test_access_after_grow_agrees(self):
        from repro.wasm import MemoryGrow, WDrop

        module = memory_module([
            Const(I32, 1), MemoryGrow(), WDrop(),
            Const(I32, PAGE_SIZE + 8), Const(I32, 0xBEEF), StoreI(I32),
            Const(I32, PAGE_SIZE + 8), Load(I32),
        ], max_pages=2)
        assert run_both(module) == ("ok", [0xBEEF])

    def test_grow_beyond_max_returns_minus_one_wrapped(self):
        module = memory_module([
            Const(I32, 5), MemoryGrow(),
        ], max_pages=2)
        assert run_both(module) == ("ok", [0xFFFFFFFF])


class TestGrowFailurePathParity:
    """`memory.grow` failures are a ``-1`` result, not a trap, and cost the
    same steps on both engines — including under every step budget."""

    # The budget points used by tests/wasm/test_engines.py::TestMaxStepsParity.
    BUDGET_POINTS = [1, 2, 3, 5, 17, 100, 399, 701]

    @staticmethod
    def _grow_failures_module():
        # Three failing grows (negative-as-u32, huge, beyond declared max)
        # followed by a successful one; result: -1 -1 -1 summed with the old
        # size and the final page count.
        body = (
            Const(I32, 0xFFFFFFFF), MemoryGrow(),   # u32 delta way past the limit: -1
            Const(I32, 70000), MemoryGrow(),        # past the 4 GiB hard limit: -1
            Binop(I32, "add"),
            Const(I32, 4), MemoryGrow(),            # past max_pages=2: -1
            Binop(I32, "add"),
            Const(I32, 1), MemoryGrow(),            # ok: old size 1
            Binop(I32, "add"),
            MemorySize(),
            Binop(I32, "add"),
        )
        return memory_module(body, max_pages=2)

    def test_failed_grows_return_minus_one_without_trapping(self):
        module = self._grow_failures_module()
        kind, values = run_both(module)
        assert kind == "ok"
        # 3 * 0xFFFFFFFF + 1 + 2, wrapped to u32.
        assert values == [(3 * 0xFFFFFFFF + 1 + 2) & 0xFFFFFFFF]

    def test_steps_identical_across_engines(self):
        module = self._grow_failures_module()
        steps = []
        for engine in ("tree", "flat"):
            interp = WasmInterpreter(engine=engine)
            inst = interp.instantiate(module)
            interp.invoke(inst, "main")
            steps.append(interp.steps)
        assert steps[0] == steps[1] > 0

    @pytest.mark.parametrize("budget", BUDGET_POINTS)
    def test_budget_parity_through_grow_failures(self, budget):
        module = self._grow_failures_module()
        outcomes = []
        for engine in ("tree", "flat"):
            interp = WasmInterpreter(max_steps=budget, engine=engine)
            inst = interp.instantiate(module)
            try:
                outcomes.append(("ok", interp.invoke(inst, "main"), interp.steps))
            except WasmTrap as trap:
                outcomes.append(("trap", str(trap), interp.steps))
        assert outcomes[0] == outcomes[1], f"budget {budget}: {outcomes}"
        kind, detail, steps = outcomes[0]
        if kind == "trap":
            assert detail == "step budget exhausted"
            assert steps == budget + 1  # the offending step is counted


class TestGrowWhileViewedParity:
    def test_grow_under_held_view_raises_identically_on_both_engines(self):
        # A host function grabs a zero-copy view; the module then tries to
        # grow.  Both engines surface the same clear BufferError (not an
        # opaque "exported pointers" failure), and the memory is unchanged.
        from repro.wasm import WasmImportedFunction, WCall, WDrop

        peek = WasmImportedFunction(WasmFuncType((), ()), "env", "peek")
        main = WasmFunction(WasmFuncType((), (I32,)), (), (
            WCall(0),
            Const(I32, 1), MemoryGrow(),
        ), exports=("main",))
        module = WasmModule(functions=(peek, main), memory=WasmMemory(1, 4))

        outcomes = []
        for engine in ("tree", "flat"):
            interp = WasmInterpreter(engine=engine)
            holder = {}

            def grab():
                holder["view"] = holder["inst"].memory.read(0, 4)

            holder["inst"] = interp.instantiate(module, {("env", "peek"): grab})
            with pytest.raises(BufferError) as excinfo:
                interp.invoke(holder["inst"], "main")
            outcomes.append(str(excinfo.value))
            holder["view"].release()
            assert holder["inst"].memory.size_pages() == 1
        assert outcomes[0] == outcomes[1]
        assert "zero-copy view" in outcomes[0]
