"""Bounds-edge tests for :class:`repro.wasm.LinearMemory`.

The memory moved to a memoryview/bytearray fast path: reads are zero-copy
views over the backing store, writes are in-place slice assignments, and
``grow`` extends the backing ``bytearray`` in place (identity-preserving for
engines that bind ``memory.data`` locally).  These tests pin the edge
behaviour: growth to the declared maximum, off-by-one accesses at page
boundaries, zero-length accesses, and both engines trapping identically.
"""

import pytest

from repro.wasm import (
    Binop,
    Const,
    LinearMemory,
    Load,
    PAGE_SIZE,
    StoreI,
    ValType,
    WasmFuncType,
    WasmFunction,
    WasmInterpreter,
    WasmMemory,
    WasmModule,
    WasmTrap,
)

I32 = ValType.I32


def memory_module(body, *, pages=1, max_pages=None, results=(I32,)):
    function = WasmFunction(WasmFuncType((), tuple(results)), (), tuple(body), exports=("main",))
    return WasmModule(functions=(function,), memory=WasmMemory(pages, max_pages))


def run_both(module, export="main"):
    outcomes = []
    for engine in ("tree", "flat"):
        interp = WasmInterpreter(engine=engine)
        inst = interp.instantiate(module)
        try:
            outcomes.append(("ok", interp.invoke(inst, export)))
        except WasmTrap as trap:
            outcomes.append(("trap", str(trap)))
    assert outcomes[0] == outcomes[1], f"engine divergence: {outcomes}"
    return outcomes[0]


class TestDirectAccess:
    def test_read_is_zero_copy_view(self):
        memory = LinearMemory(1)
        memory.write(4, b"\x01\x02\x03\x04")
        view = memory.read(4, 4)
        assert isinstance(view, memoryview)
        assert view == b"\x01\x02\x03\x04"
        # Zero-copy: later writes are visible through the view.
        memory.data[4] = 0xFF
        assert view[0] == 0xFF

    def test_read_bytes_returns_owned_copy(self):
        memory = LinearMemory(1)
        memory.write(0, b"abc")
        copy = memory.read_bytes(0, 3)
        assert isinstance(copy, bytes)
        memory.data[0] = 0
        assert copy == b"abc"

    def test_zero_length_access(self):
        memory = LinearMemory(1)
        assert memory.read(0, 0) == b""
        # A zero-length access at the very end of memory is in bounds...
        assert memory.read(PAGE_SIZE, 0) == b""
        memory.write(PAGE_SIZE, b"")
        # ...but one byte past it is not.
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(PAGE_SIZE + 1, 0)

    def test_off_by_one_at_page_boundary(self):
        memory = LinearMemory(1)
        memory.write(PAGE_SIZE - 4, b"\xAA\xBB\xCC\xDD")  # flush against the end
        assert memory.read(PAGE_SIZE - 1, 1) == b"\xDD"
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(PAGE_SIZE - 3, 4)
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.write(PAGE_SIZE - 3, b"\x00\x00\x00\x00")

    def test_negative_address_traps(self):
        memory = LinearMemory(1)
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            memory.read(-1, 1)

    def test_grow_to_max_and_beyond(self):
        memory = LinearMemory(1, max_pages=3)
        assert memory.grow(2) == 1  # returns the old size
        assert memory.size_pages() == 3
        assert memory.grow(1) == -1  # beyond max: refused, size unchanged
        assert memory.size_pages() == 3
        assert memory.grow(0) == 3  # zero growth at max is fine

    def test_grow_preserves_data_and_identity(self):
        memory = LinearMemory(1)
        backing = memory.data
        memory.write(100, b"keep")
        assert memory.grow(1) == 1
        assert memory.data is backing  # in-place extend, bindings stay valid
        assert memory.read(100, 4) == b"keep"
        assert memory.read(PAGE_SIZE, 4) == b"\x00\x00\x00\x00"
        # The refreshed view covers the grown region.
        assert len(memory.read(0, 2 * PAGE_SIZE)) == 2 * PAGE_SIZE

    def test_view_held_across_grow_is_rejected(self):
        # Growing needs the buffer unexported; a caller-held view makes the
        # extend fail loudly rather than corrupt the view.
        memory = LinearMemory(1)
        view = memory.read(0, 4)
        with pytest.raises(BufferError):
            memory.grow(1)
        view.release()
        assert memory.grow(1) == 1

    def test_trap_message_shape(self):
        memory = LinearMemory(1)
        with pytest.raises(WasmTrap) as excinfo:
            memory.read(PAGE_SIZE, 4)
        assert str(excinfo.value) == (
            f"out-of-bounds memory access at {PAGE_SIZE} (+4), memory is {PAGE_SIZE} bytes"
        )


class TestEngineBoundaryAgreement:
    def test_store_at_boundary_ok(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 4), Const(I32, 0x1234), StoreI(I32),
            Const(I32, PAGE_SIZE - 4), Load(I32),
        ])
        assert run_both(module) == ("ok", [0x1234])

    def test_store_off_by_one_traps_identically(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 3), Const(I32, 1), StoreI(I32),
            Const(I32, 0),
        ])
        kind, message = run_both(module)
        assert kind == "trap"
        assert message == (
            f"out-of-bounds memory access at {PAGE_SIZE - 3} (+4), memory is {PAGE_SIZE} bytes"
        )

    def test_narrow_load_at_boundary(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 1), Const(I32, 0x7F), StoreI(I32, width=8),
            Const(I32, PAGE_SIZE - 1), Load(I32, width=8, signed=False),
        ])
        assert run_both(module) == ("ok", [0x7F])

    def test_load_with_offset_past_boundary_traps(self):
        module = memory_module([
            Const(I32, PAGE_SIZE - 2), Load(I32, offset=1, width=16),
        ])
        kind, message = run_both(module)
        assert kind == "trap"
        assert "out-of-bounds" in message

    def test_access_after_grow_agrees(self):
        from repro.wasm import MemoryGrow, WDrop

        module = memory_module([
            Const(I32, 1), MemoryGrow(), WDrop(),
            Const(I32, PAGE_SIZE + 8), Const(I32, 0xBEEF), StoreI(I32),
            Const(I32, PAGE_SIZE + 8), Load(I32),
        ], max_pages=2)
        assert run_both(module) == ("ok", [0xBEEF])

    def test_grow_beyond_max_returns_minus_one_wrapped(self):
        from repro.wasm import MemoryGrow

        module = memory_module([
            Const(I32, 5), MemoryGrow(),
        ], max_pages=2)
        assert run_both(module) == ("ok", [0xFFFFFFFF])
